//! BLIS-style operand packing and the register-tiled packed micro-kernel.
//!
//! The blocked kernel ([`gemm_blocked`](super::gemm_blocked)) reads `A` and
//! `B` through strided views on every tile pass; the packed path instead
//! copies each operand once into a contiguous, cache-aligned staging buffer
//! shaped for the micro-kernel, mirroring how the paper's Cutlass SRGEMM
//! stages global-memory tiles through shared memory before the MMA loop:
//!
//! * **`A` micro-panels** ([`PackedA`]): an `MC × KC` slab of `A` is stored
//!   as `⌈ib/MR⌉` panels of `MR` rows each, **column-major within the
//!   panel** (`panel[l*MR + r] = A[i0+p*MR+r][k0+l]`), so the micro-kernel
//!   reads one contiguous `MR`-column per reduction step. Ragged tail panels
//!   are padded to `MR` rows with `S::zero()`.
//! * **`B` panels** ([`PackedB`]): the whole operand is stored as a grid of
//!   `KC × NC` tiles, each tile **row-major contiguous** with its rows
//!   padded to the element-width-derived [`pad_quantum`] stride (128 bytes
//!   worth of elements), so the inner `⊕/⊗` loop streams `B`
//!   with stride 1 regardless of the parent view's stride. A `PackedB` is
//!   immutable after packing and [`Sync`], which is what lets one packed
//!   copy be shared across all row slabs of a parallel GEMM and across all
//!   strip/bulk updates of one Floyd-Warshall `k`-iteration. Its layout does
//!   not depend on the micro-tile shape, so one packed copy serves every
//!   ISA variant.
//!
//! Both pads are `S::zero()` — the `⊕`-identity, which is also the
//! `⊗`-annihilator — so an FMA against a padded lane leaves the accumulator
//! unchanged. That lets even ragged `MR`/`NR` tails run the full-width
//! register-tiled loop (`micro_tile_padded`); the dead accumulator lanes
//! are simply never loaded from or stored back to `C`.
//!
//! The micro-kernel (`micro_tile_full`) computes an `MR × NR` block of `C`
//! in a fixed-size lane array `[[S::Elem; NR]; MR]`. Because `MR`/`NR` are
//! compile-time constants and the accumulators live in an array small enough
//! to stay in registers, LLVM unrolls and autovectorizes the `⊕/⊗` update
//! without any explicit SIMD — each reduction step costs `MR + NR` loads for
//! `MR·NR` semiring FMAs, versus ≈1.5 loads/FMA for the 4-way-unrolled
//! blocked kernel. `C` itself is touched only twice per `KC`-tile
//! (load + store), not once per reduction step.
//!
//! On x86-64 the kernel is compiled at three vector widths from the same
//! generic source — SSE2 (baseline), AVX2, AVX-512 — by instantiating it
//! inside `#[target_feature]` wrappers, and dispatched once per slab pass
//! via `is_x86_feature_detected!`. Each width gets the micro-tile shape
//! that fills (without spilling) its register file; see [`Isa`].
//!
//! Reduction order is preserved exactly: every variant folds `k` in
//! ascending order per output element, so the packed path is
//! **bit-identical** to [`gemm_naive`](super::gemm_naive) for every semiring
//! (including non-idempotent floating-point `RealArith`) on every ISA. The
//! unchecked-access safety argument is spelled out in DESIGN.md §11.

use super::blocked::{KC, MC, NC};
use crate::matrix::{View, ViewMut};
use crate::semiring::Semiring;

/// Cache-line alignment target for packed buffers, in bytes.
const ALIGN: usize = 64;

/// Byte quantum for packed-`B` tile-row padding: every tile row spans a
/// multiple of this many **bytes**, which is the widest `NR` lane (in bytes)
/// any [`Isa`] variant reads — two ZMM registers. The element-count pad
/// stride follows from the element width via [`pad_quantum`], so a u16
/// semiring pads to 64 elements while f32/i32 pad to 32 and f64 to 16; in
/// every case each variant's `NR` divides the pad, so one packed layout
/// serves every ISA. Since `⊕`-identity is the `⊗`-annihilator in a
/// semiring, an FMA against a padded column leaves the accumulator
/// untouched — ragged column tails run the same register-tiled loop as
/// interior tiles instead of a scalar fallback.
const PAD_BYTES: usize = 128;

/// Pad-stride quantum in **elements** for an element of `size` bytes:
/// [`PAD_BYTES`] worth of power-of-two-sized elements, or the legacy
/// 32-element quantum for exotic element sizes (which only the baseline
/// shapes, whose `NR` divides 32, ever run at full width).
#[inline]
pub const fn pad_quantum_for(size: usize) -> usize {
    match size {
        1 | 2 | 4 | 8 => PAD_BYTES / size,
        _ => 32,
    }
}

/// Pad-stride quantum in elements for element type `E` — the row stride
/// multiple every [`PackedB`] tile uses. Derived from the element width, not
/// a global constant: serialized blob sizes therefore differ per dtype.
#[inline]
pub const fn pad_quantum<E>() -> usize {
    pad_quantum_for(std::mem::size_of::<E>())
}

/// Vector ISA selected for the micro-kernel, fixing its micro-tile shape.
///
/// The shapes were tuned empirically and match register-file arithmetic: an
/// `MR × NR` f32 accumulator block occupies `MR·NR/16` ZMM, `MR·NR/8` YMM,
/// or `MR·NR/4` XMM registers, and the kernel needs spare registers for the
/// `A` broadcast and `B` row loads. Oversized tiles fall off a spill cliff
/// (measured >5× slowdown at MR=12 on AVX-512), so each width gets the
/// largest power-of-two shape that stays resident.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Isa {
    /// AVX-512: 32 vector registers → 8×32 f32 tile = 16 ZMM accumulators.
    #[cfg(target_arch = "x86_64")]
    Avx512,
    /// AVX2: 16 vector registers → 4×16 f32 tile = 8 YMM accumulators.
    #[cfg(target_arch = "x86_64")]
    Avx2,
    /// Baseline autovectorization (SSE2 on x86-64, NEON on aarch64, …):
    /// 2×16 tile = 8 XMM accumulators.
    Baseline,
}

impl Isa {
    /// Detect the widest supported variant (cheap cached lookup; called once
    /// per GEMM invocation, not per tile).
    ///
    /// The AVX-512 variant requires `avx512bw` (without it there are no
    /// 512-bit 16-bit-element min/saturating-add instructions, so the u16
    /// semiring would fall apart into spilling 128-bit code) and `avx512vl`
    /// (so narrower ops can still use all 32 registers). Every server part
    /// since Skylake-SP has all three; a hypothetical F-only CPU falls back
    /// to AVX2 rather than compiling a width it can't execute well.
    pub fn detect() -> Isa {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx512f")
                && is_x86_feature_detected!("avx512bw")
                && is_x86_feature_detected!("avx512vl")
            {
                return Isa::Avx512;
            }
            if is_x86_feature_detected!("avx2") {
                return Isa::Avx2;
            }
        }
        Isa::Baseline
    }

    /// `(MR, NR)` micro-tile shape used by this variant's kernel for an
    /// element of `elem_size` bytes. `NR` is a fixed **byte** width per
    /// variant (two ZMM / two YMM / two XMM registers per accumulator row),
    /// so narrower elements get proportionally more lanes: u16 runs a 64-wide
    /// `NR` on AVX-512 where f32 runs 32 and f64 runs 16. Every shape's `NR`
    /// divides the [`pad_quantum_for`] stride of the same element size.
    pub fn micro_shape(self, elem_size: usize) -> (usize, usize) {
        let (mr, nr_bytes) = match self {
            #[cfg(target_arch = "x86_64")]
            Isa::Avx512 => (8, 128),
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2 => (4, 64),
            Isa::Baseline => (2, 64),
        };
        match elem_size {
            1 | 2 | 4 | 8 => (mr, nr_bytes / elem_size),
            // exotic element sizes fall back to the pre-quantization shapes,
            // which divide the legacy 32-element pad quantum
            _ => (mr, if nr_bytes == 128 { 32 } else { 16 }),
        }
    }
}

/// A reusable element buffer whose payload starts on (a best-effort) 64-byte
/// boundary. `Vec` only guarantees `align_of::<E>()`, so we over-allocate by
/// one cache line and skip elements until the payload is aligned; for the
/// power-of-two element sizes used here the skip is always exact.
#[derive(Debug, Default)]
struct AlignedBuf<E> {
    raw: Vec<E>,
    offset: usize,
    len: usize,
}

impl<E: Copy> AlignedBuf<E> {
    fn new() -> Self {
        Self { raw: Vec::new(), offset: 0, len: 0 }
    }

    /// Resize so that `len` aligned elements are available, filling any newly
    /// grown region with `fill`. Reuses the existing allocation when large
    /// enough (the point of keeping `PackedA`/`PackedB` across iterations).
    fn ensure(&mut self, len: usize, fill: E) {
        let esz = std::mem::size_of::<E>().max(1);
        let pad = if esz >= ALIGN { 0 } else { ALIGN / esz };
        if self.raw.len() < len + pad {
            self.raw.resize(len + pad, fill);
        }
        let addr = self.raw.as_ptr() as usize;
        let rem = addr % ALIGN;
        self.offset = if rem == 0 || esz >= ALIGN {
            0
        } else {
            // For power-of-two esz < 64 this division is exact (rem is a
            // multiple of the element alignment); otherwise it rounds down,
            // which only costs alignment, never correctness.
            (ALIGN - rem) / esz
        };
        self.len = len;
    }

    #[inline]
    fn packed(&self) -> &[E] {
        &self.raw[self.offset..self.offset + self.len]
    }

    #[inline]
    fn packed_mut(&mut self) -> &mut [E] {
        &mut self.raw[self.offset..self.offset + self.len]
    }
}

/// A whole `B` operand packed as a grid of `kc × nc` tiles, each row-major
/// contiguous. Immutable after packing; share by reference (`&PackedB`)
/// across row slabs / FW strip updates to pack once and stream many times.
#[derive(Debug)]
pub struct PackedB<E> {
    buf: AlignedBuf<E>,
    rows: usize,
    cols: usize,
    kc: usize,
    nc: usize,
    /// Element offset of tile `(kt, jt)` at `tile_off[kt * jt_count + jt]`.
    tile_off: Vec<usize>,
    kt_count: usize,
    jt_count: usize,
}

impl<E: Copy> PackedB<E> {
    /// Pack `b` with the default [`KC`]`×`[`NC`] tiling.
    pub fn pack<S: Semiring<Elem = E>>(b: &View<'_, E>) -> Self {
        Self::pack_tiled::<S>(b, KC, NC)
    }

    /// Pack `b` with explicit tile sizes (exposed for tests and the tiling
    /// ablation; must match the consuming kernel's tiling).
    ///
    /// # Panics
    /// Panics if `kc` or `nc` is zero.
    pub fn pack_tiled<S: Semiring<Elem = E>>(b: &View<'_, E>, kc: usize, nc: usize) -> Self {
        let mut packed = Self {
            buf: AlignedBuf::new(),
            rows: 0,
            cols: 0,
            kc,
            nc,
            tile_off: Vec::new(),
            kt_count: 0,
            jt_count: 0,
        };
        packed.repack::<S>(b);
        packed
    }

    /// Re-pack a (possibly differently shaped) `b` into this buffer, reusing
    /// the allocation. This is what the FW drivers call once per `k`
    /// iteration on the freshly broadcast row panel.
    ///
    /// # Panics
    /// Panics if the tile sizes this buffer was built with are zero.
    pub fn repack<S: Semiring<Elem = E>>(&mut self, b: &View<'_, E>) {
        assert!(self.kc > 0 && self.nc > 0, "pack tile sizes must be positive");
        let (k, n) = (b.rows(), b.cols());
        self.rows = k;
        self.cols = n;
        self.kt_count = k.div_ceil(self.kc);
        self.jt_count = n.div_ceil(self.nc);
        // Total capacity with every tile row padded to the pad-quantum stride.
        let padded_cols: usize =
            (0..self.jt_count).map(|jt| self.padded_tile_width(jt)).sum();
        self.buf.ensure(k * padded_cols, S::zero());
        self.tile_off.clear();
        self.tile_off.reserve(self.kt_count * self.jt_count);

        let (kc, nc) = (self.kc, self.nc);
        let dst = self.buf.packed_mut();
        let mut off = 0;
        for kt in 0..self.kt_count {
            let k0 = kt * kc;
            let kb = kc.min(k - k0);
            for jt in 0..self.jt_count {
                let j0 = jt * nc;
                let jb = nc.min(n - j0);
                let stride = jb.next_multiple_of(pad_quantum::<E>());
                self.tile_off.push(off);
                for l in 0..kb {
                    let row = &mut dst[off + l * stride..off + l * stride + stride];
                    row[..jb].copy_from_slice(&b.row(k0 + l)[j0..j0 + jb]);
                    // Explicitly re-zero the pad: the buffer is reused across
                    // repacks, so stale values may be present, and the kernel
                    // relies on padded columns being the ⊗-annihilator.
                    row[jb..].fill(S::zero());
                }
                off += kb * stride;
            }
        }
        debug_assert_eq!(off, k * padded_cols);
    }

    /// Logical row count (`k` of the original operand).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical column count (`n` of the original operand).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of `kc`-tiles along the reduction dimension.
    #[inline]
    pub fn kt_count(&self) -> usize {
        self.kt_count
    }

    /// Number of `nc`-tiles along the column dimension.
    #[inline]
    pub fn jt_count(&self) -> usize {
        self.jt_count
    }

    /// `(k0, kb)` extent of reduction tile `kt`.
    #[inline]
    pub fn row_range(&self, kt: usize) -> (usize, usize) {
        let k0 = kt * self.kc;
        (k0, self.kc.min(self.rows - k0))
    }

    /// `(j0, jb)` extent of column tile `jt`.
    #[inline]
    pub fn col_range(&self, jt: usize) -> (usize, usize) {
        let j0 = jt * self.nc;
        (j0, self.nc.min(self.cols - j0))
    }

    /// Row stride of tile column `jt`: its logical width `jb` rounded up to
    /// the element-width-derived [`pad_quantum`]; the pad region is
    /// `S::zero()`-filled.
    #[inline]
    pub fn padded_tile_width(&self, jt: usize) -> usize {
        let (_, jb) = self.col_range(jt);
        jb.next_multiple_of(pad_quantum::<E>())
    }

    /// The row-major contiguous `kb × padded_tile_width(jt)` tile `(kt, jt)`;
    /// only the first `jb` elements of each row are live.
    #[inline]
    pub fn tile(&self, kt: usize, jt: usize) -> &[E] {
        let (_, kb) = self.row_range(kt);
        let stride = self.padded_tile_width(jt);
        let off = self.tile_off[kt * self.jt_count + jt];
        &self.buf.packed()[off..off + kb * stride]
    }
}

/// An element type that can live in a serialized [`PackedB`] payload:
/// fixed-width little-endian encoding, independent of host endianness.
/// Implemented for the floating-point and quantized integer element types
/// the semirings use.
pub trait PackElem: Copy + Default {
    /// Encoded size in bytes.
    const BYTES: usize;
    /// Dtype discriminant carried in blob and tile-store headers so that
    /// same-width dtypes (i32 vs f32 are both 4 B, same pad stride) can
    /// never be silently reinterpreted as each other.
    const CODE: u8;
    /// Human-readable dtype name (`"f32"`, `"u16"`, …) for error messages.
    const DTYPE: &'static str;
    /// Append the little-endian encoding of `self` to `out`.
    fn write_le(self, out: &mut Vec<u8>);
    /// Decode from exactly [`PackElem::BYTES`] bytes.
    fn read_le(b: &[u8]) -> Self;
}

/// Map a [`PackElem::CODE`] back to its dtype name (for error messages about
/// blobs written by a *different* dtype than the decoder's).
pub fn dtype_name(code: u8) -> &'static str {
    match code {
        1 => f32::DTYPE,
        2 => f64::DTYPE,
        3 => u16::DTYPE,
        4 => i32::DTYPE,
        _ => "unknown",
    }
}

macro_rules! impl_pack_elem {
    ($t:ty, $code:expr, $name:literal, $n:expr) => {
        impl PackElem for $t {
            const BYTES: usize = $n;
            const CODE: u8 = $code;
            const DTYPE: &'static str = $name;
            fn write_le(self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn read_le(b: &[u8]) -> Self {
                let mut raw = [0u8; $n];
                raw.copy_from_slice(&b[..$n]);
                <$t>::from_le_bytes(raw)
            }
        }
    };
}

impl_pack_elem!(f32, 1, "f32", 4);
impl_pack_elem!(f64, 2, "f64", 8);
impl_pack_elem!(u16, 3, "u16", 2);
impl_pack_elem!(i32, 4, "i32", 4);

/// Why a serialized [`PackedB`] blob failed to decode — typed, so tile
/// stores can surface corruption as an error instead of a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PackDecodeError {
    /// The blob does not start with the `APTB` magic.
    BadMagic,
    /// Unknown format version.
    BadVersion(u32),
    /// The blob was encoded with a different element width.
    WrongElemSize {
        /// Width this decoder expects.
        expected: usize,
        /// Width the header claims.
        got: usize,
    },
    /// The blob was encoded with a different element dtype of the *same*
    /// width (e.g. an i32 blob decoded as f32) — reinterpreting the payload
    /// would silently produce garbage distances, so it is refused.
    WrongElemType {
        /// Dtype name this decoder expects.
        expected: &'static str,
        /// Dtype name the header claims (see [`dtype_name`]).
        got: &'static str,
    },
    /// The blob ends before the payload the header promises.
    Truncated {
        /// Bytes the header implies.
        needed: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// Header fields contradict each other (zero tile sizes, a payload
    /// length that does not match the declared shape, or an overflowing
    /// shape) — the blob is corrupt.
    Inconsistent,
}

impl std::fmt::Display for PackDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PackDecodeError::BadMagic => write!(f, "not a packed-tile blob (bad magic)"),
            PackDecodeError::BadVersion(v) => write!(f, "unknown packed-tile version {v}"),
            PackDecodeError::WrongElemSize { expected, got } => {
                write!(f, "packed-tile element width {got} B, expected {expected} B")
            }
            PackDecodeError::WrongElemType { expected, got } => {
                write!(f, "packed-tile element dtype {got}, expected {expected}")
            }
            PackDecodeError::Truncated { needed, got } => {
                write!(f, "packed-tile blob truncated: need {needed} B, have {got} B")
            }
            PackDecodeError::Inconsistent => write!(f, "packed-tile header is inconsistent"),
        }
    }
}

impl std::error::Error for PackDecodeError {}

/// Serialized-blob magic: "APTB" = APsp Tile, B-format.
const BLOB_MAGIC: [u8; 4] = *b"APTB";
/// Serialized-blob format version.
const BLOB_VERSION: u32 = 1;
/// Fixed header: magic + version + elem field + rows/cols/kc/nc/payload_len.
/// The elem field packs the byte width in its low 16 bits and the
/// [`PackElem::CODE`] dtype discriminant in the high 16.
const BLOB_HEADER: usize = 4 + 4 + 4 + 5 * 8;

/// Encode a dtype's `(width, code)` pair into the header's elem field.
fn elem_field<E: PackElem>() -> u32 {
    (E::BYTES as u32) | ((E::CODE as u32) << 16)
}

/// Padded payload length (in elements) of a `rows × cols` operand of
/// `elem_size`-byte elements packed with `kc × nc` tiles: every tile row is
/// padded to the [`pad_quantum_for`] stride of that width, so the total is
/// `rows · Σ_jt pad(jb)` — and therefore differs per dtype. `None` on
/// overflow or zero tile sizes.
fn packed_payload_len(
    rows: usize,
    cols: usize,
    kc: usize,
    nc: usize,
    elem_size: usize,
) -> Option<usize> {
    if kc == 0 || nc == 0 {
        return None;
    }
    let pad = pad_quantum_for(elem_size);
    let jt_count = cols.div_ceil(nc);
    let mut padded_cols = 0usize;
    for jt in 0..jt_count {
        let jb = nc.min(cols - jt * nc);
        padded_cols = padded_cols.checked_add(jb.next_multiple_of(pad))?;
    }
    rows.checked_mul(padded_cols)
}

impl<E: PackElem> PackedB<E> {
    /// Size in bytes of the serialized form of a `rows × cols` operand
    /// packed `kc × nc` — what a tile store reserves per slot.
    ///
    /// # Panics
    /// Panics if `kc`/`nc` are zero or the shape overflows `usize`.
    pub fn serialized_len(rows: usize, cols: usize, kc: usize, nc: usize) -> usize {
        let payload = packed_payload_len(rows, cols, kc, nc, E::BYTES)
            .expect("packed shape must be representable");
        BLOB_HEADER + payload * E::BYTES
    }

    /// Serialize to the on-disk blob format (`APTB` header + little-endian
    /// payload). The payload is the packed buffer verbatim — pads included —
    /// so [`PackedB::from_bytes`] rebuilds a buffer the kernel can stream
    /// without any repacking.
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload = self.buf.packed();
        let mut out = Vec::with_capacity(BLOB_HEADER + payload.len() * E::BYTES);
        out.extend_from_slice(&BLOB_MAGIC);
        out.extend_from_slice(&BLOB_VERSION.to_le_bytes());
        out.extend_from_slice(&elem_field::<E>().to_le_bytes());
        for dim in [self.rows, self.cols, self.kc, self.nc, payload.len()] {
            out.extend_from_slice(&(dim as u64).to_le_bytes());
        }
        for &v in payload {
            v.write_le(&mut out);
        }
        out
    }

    /// Decode a blob produced by [`PackedB::to_bytes`]. The rebuilt value is
    /// indistinguishable from the freshly packed original (same tiles, same
    /// pads, same aligned layout). Corruption — wrong magic, truncation,
    /// contradictory header fields — returns a typed [`PackDecodeError`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PackDecodeError> {
        if bytes.len() < BLOB_HEADER {
            return Err(PackDecodeError::Truncated { needed: BLOB_HEADER, got: bytes.len() });
        }
        if bytes[..4] != BLOB_MAGIC {
            return Err(PackDecodeError::BadMagic);
        }
        let u32_at = |o: usize| u32::from_le_bytes([bytes[o], bytes[o + 1], bytes[o + 2], bytes[o + 3]]);
        let u64_at = |o: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[o..o + 8]);
            u64::from_le_bytes(b)
        };
        let version = u32_at(4);
        if version != BLOB_VERSION {
            return Err(PackDecodeError::BadVersion(version));
        }
        let elem = u32_at(8);
        let width = (elem & 0xFFFF) as usize;
        let code = (elem >> 16) as u8;
        if width != E::BYTES {
            return Err(PackDecodeError::WrongElemSize { expected: E::BYTES, got: width });
        }
        if code != E::CODE {
            return Err(PackDecodeError::WrongElemType {
                expected: E::DTYPE,
                got: dtype_name(code),
            });
        }
        let as_usize = |v: u64| usize::try_from(v).map_err(|_| PackDecodeError::Inconsistent);
        let rows = as_usize(u64_at(12))?;
        let cols = as_usize(u64_at(20))?;
        let kc = as_usize(u64_at(28))?;
        let nc = as_usize(u64_at(36))?;
        let payload_len = as_usize(u64_at(44))?;
        // The payload length must match the declared shape exactly — a
        // mismatch means the header lies about something.
        if packed_payload_len(rows, cols, kc, nc, E::BYTES) != Some(payload_len) {
            return Err(PackDecodeError::Inconsistent);
        }
        let needed = BLOB_HEADER
            + payload_len.checked_mul(E::BYTES).ok_or(PackDecodeError::Inconsistent)?;
        if bytes.len() < needed {
            return Err(PackDecodeError::Truncated { needed, got: bytes.len() });
        }

        let mut packed = Self {
            buf: AlignedBuf::new(),
            rows,
            cols,
            kc,
            nc,
            tile_off: Vec::new(),
            kt_count: rows.div_ceil(kc),
            jt_count: cols.div_ceil(nc),
        };
        packed.buf.ensure(payload_len, E::default());
        let dst = packed.buf.packed_mut();
        for (i, v) in dst.iter_mut().enumerate() {
            *v = E::read_le(&bytes[BLOB_HEADER + i * E::BYTES..]);
        }
        // Rebuild tile offsets with the same walk `repack` uses.
        packed.tile_off.reserve(packed.kt_count * packed.jt_count);
        let mut off = 0;
        for kt in 0..packed.kt_count {
            let (_, kb) = packed.row_range(kt);
            for jt in 0..packed.jt_count {
                packed.tile_off.push(off);
                off += kb * packed.padded_tile_width(jt);
            }
        }
        debug_assert_eq!(off, payload_len);
        Ok(packed)
    }
}

impl<E: Copy> PackedB<E> {
    /// Copy the live (unpadded) elements back out into a dense `rows × cols`
    /// view — the inverse of [`PackedB::repack`]. Used by tile stores when a
    /// packed tile must serve as the `A` or `C` operand of an update.
    ///
    /// # Panics
    /// Panics if `out` is not `rows() × cols()`.
    pub fn unpack_into(&self, out: &mut ViewMut<'_, E>) {
        assert_eq!(out.rows(), self.rows, "unpack: row count mismatch");
        assert_eq!(out.cols(), self.cols, "unpack: col count mismatch");
        for kt in 0..self.kt_count {
            let (k0, kb) = self.row_range(kt);
            for jt in 0..self.jt_count {
                let (j0, jb) = self.col_range(jt);
                let stride = self.padded_tile_width(jt);
                let tile = self.tile(kt, jt);
                for l in 0..kb {
                    out.row_mut(k0 + l)[j0..j0 + jb]
                        .copy_from_slice(&tile[l * stride..l * stride + jb]);
                }
            }
        }
    }
}

/// Reusable packing buffer for one `MC × KC` slab of `A`, stored as
/// `mr`-row column-major micro-panels (see module docs). One lives per
/// worker thread; `pack_slab` is called per `(kc, ic)` tile pass with the
/// `mr` of the dispatched kernel.
#[derive(Debug)]
pub struct PackedA<E> {
    buf: AlignedBuf<E>,
    panels: usize,
    mr: usize,
    kb: usize,
}

impl<E: Copy> PackedA<E> {
    /// An empty buffer; allocates on first `pack_slab`.
    pub fn new() -> Self {
        Self { buf: AlignedBuf::new(), panels: 0, mr: 0, kb: 0 }
    }

    /// Pack the `ib × kb` slab of `a` at `(i0, k0)` into `mr`-row
    /// micro-panels, padding the last panel's missing rows with `S::zero()`.
    ///
    /// # Panics
    /// Panics if `mr` is zero.
    pub fn pack_slab<S: Semiring<Elem = E>>(
        &mut self,
        a: &View<'_, E>,
        i0: usize,
        k0: usize,
        ib: usize,
        kb: usize,
        mr: usize,
    ) {
        assert!(mr > 0, "micro-panel height must be positive");
        self.panels = ib.div_ceil(mr);
        self.mr = mr;
        self.kb = kb;
        self.buf.ensure(self.panels * mr * kb, S::zero());
        let dst = self.buf.packed_mut();
        for p in 0..self.panels {
            let r0 = p * mr;
            let live = mr.min(ib - r0);
            let base = p * mr * kb;
            for r in 0..live {
                let a_row = &a.row(i0 + r0 + r)[k0..k0 + kb];
                for (l, &v) in a_row.iter().enumerate() {
                    dst[base + l * mr + r] = v;
                }
            }
            // Explicitly zero padded lanes: the buffer is reused across
            // slabs, so stale values from a previous pack may be present.
            for r in live..mr {
                for l in 0..kb {
                    dst[base + l * mr + r] = S::zero();
                }
            }
        }
    }

    /// Micro-panel `p` as a `kb × mr` column-major slice.
    #[inline]
    pub fn panel(&self, p: usize) -> &[E] {
        let base = p * self.mr * self.kb;
        &self.buf.packed()[base..base + self.mr * self.kb]
    }
}

impl<E: Copy> Default for PackedA<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// `C ← C ⊕ A ⊗ B` via the packed register-tiled kernel. Packs `B` once
/// internally; use [`gemm_packed_with_b`] to amortize that pack across calls.
pub fn gemm_packed<S: Semiring>(
    c: &mut ViewMut<'_, S::Elem>,
    a: &View<'_, S::Elem>,
    b: &View<'_, S::Elem>,
) {
    super::check_shapes(c, a, b);
    let pb = PackedB::pack::<S>(b);
    gemm_packed_with_b::<S>(c, a, &pb);
}

/// `C ← C ⊕ A ⊗ B` where `B` is already packed. The caller packs once and
/// may share `pb` across row slabs, threads, and FW strip updates.
///
/// # Panics
/// Panics if operand shapes disagree (`a.cols() != pb.rows()` etc.).
pub fn gemm_packed_with_b<S: Semiring>(
    c: &mut ViewMut<'_, S::Elem>,
    a: &View<'_, S::Elem>,
    pb: &PackedB<S::Elem>,
) {
    assert_eq!(a.cols(), pb.rows(), "gemm: inner dimensions disagree");
    assert_eq!(c.rows(), a.rows(), "gemm: C rows != A rows");
    assert_eq!(c.cols(), pb.cols(), "gemm: C cols != B cols");
    let m = c.rows();
    if m == 0 || pb.cols() == 0 {
        return;
    }
    let isa = Isa::detect();
    let (mr, _) = isa.micro_shape(std::mem::size_of::<S::Elem>());
    let mut pa = PackedA::new();
    // BLIS loop order jc → pc → ic: the packed B tile (kt, jt) is streamed
    // by every MC row slab before moving on; A slabs are repacked per tile
    // pass into the thread-local `pa`. For a fixed C element the reduction
    // tiles arrive in ascending k, and each tile folds k ascending, so the
    // overall ⊕-order matches gemm_naive exactly.
    for jt in 0..pb.jt_count() {
        let (j0, jb) = pb.col_range(jt);
        let stride = pb.padded_tile_width(jt);
        for kt in 0..pb.kt_count() {
            let (k0, kb) = pb.row_range(kt);
            let b_tile = pb.tile(kt, jt);
            let mut i0 = 0;
            while i0 < m {
                let ib = MC.min(m - i0);
                pa.pack_slab::<S>(a, i0, k0, ib, kb, mr);
                slab_times_tile::<S>(isa, c, &pa, b_tile, i0, ib, j0, jb, stride, kb);
                i0 += ib;
            }
        }
    }
}

/// Multiply one packed `A` slab (`ib` rows at `i0`) by one packed `B` tile
/// (`kb` rows of `stride` elements, `jb` live, at column `j0`), walking the
/// slab in micro-tiles of the `isa`-specific shape. The caller must have
/// packed `pa` with the matching `mr` ([`Isa::micro_shape`]).
///
/// One generic source kernel is instantiated at three vector widths (the
/// `#[target_feature]` wrappers below); dispatch never changes results —
/// every variant runs the identical ⊕-ascending reduction.
#[allow(clippy::too_many_arguments)]
fn slab_times_tile<S: Semiring>(
    isa: Isa,
    c: &mut ViewMut<'_, S::Elem>,
    pa: &PackedA<S::Elem>,
    b_tile: &[S::Elem],
    i0: usize,
    ib: usize,
    j0: usize,
    jb: usize,
    stride: usize,
    kb: usize,
) {
    match isa {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Isa::detect` only returns this variant after verifying
        // avx512f+avx512bw+avx512vl at runtime (tests construct it the
        // same way).
        Isa::Avx512 => unsafe {
            slab_times_tile_avx512::<S>(c, pa, b_tile, i0, ib, j0, jb, stride, kb)
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        Isa::Avx2 => unsafe {
            slab_times_tile_avx2::<S>(c, pa, b_tile, i0, ib, j0, jb, stride, kb)
        },
        Isa::Baseline => match std::mem::size_of::<S::Elem>() {
            1 => slab_times_tile_generic::<S, 2, 64>(c, pa, b_tile, i0, ib, j0, jb, stride, kb),
            2 => slab_times_tile_generic::<S, 2, 32>(c, pa, b_tile, i0, ib, j0, jb, stride, kb),
            4 => slab_times_tile_generic::<S, 2, 16>(c, pa, b_tile, i0, ib, j0, jb, stride, kb),
            8 => slab_times_tile_generic::<S, 2, 8>(c, pa, b_tile, i0, ib, j0, jb, stride, kb),
            _ => slab_times_tile_generic::<S, 2, 16>(c, pa, b_tile, i0, ib, j0, jb, stride, kb),
        },
    }
}

/// AVX-512 instantiations, one per element width ([`Isa::micro_shape`]): an
/// accumulator row is always two ZMM registers (128 B), so the 8-row tile
/// uses 16 of the 32 available — 32 f32/i32 lanes, 64 u16 lanes, 16 f64
/// lanes per row. `avx512bw` is what gives the 16-bit-element zmm ops the
/// u16 semiring compiles to (`vpminuw`/`vpaddusw`); `avx512vl` lets the
/// compiler keep using registers 16–31 for any narrower helper ops.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512vl")]
#[allow(clippy::too_many_arguments)]
fn slab_times_tile_avx512<S: Semiring>(
    c: &mut ViewMut<'_, S::Elem>,
    pa: &PackedA<S::Elem>,
    b_tile: &[S::Elem],
    i0: usize,
    ib: usize,
    j0: usize,
    jb: usize,
    stride: usize,
    kb: usize,
) {
    match std::mem::size_of::<S::Elem>() {
        1 => slab_times_tile_generic::<S, 8, 128>(c, pa, b_tile, i0, ib, j0, jb, stride, kb),
        2 => slab_times_tile_generic::<S, 8, 64>(c, pa, b_tile, i0, ib, j0, jb, stride, kb),
        4 => slab_times_tile_generic::<S, 8, 32>(c, pa, b_tile, i0, ib, j0, jb, stride, kb),
        8 => slab_times_tile_generic::<S, 8, 16>(c, pa, b_tile, i0, ib, j0, jb, stride, kb),
        _ => slab_times_tile_generic::<S, 8, 32>(c, pa, b_tile, i0, ib, j0, jb, stride, kb),
    }
}

/// AVX2 instantiations: an accumulator row is two YMM registers (64 B), the
/// 4-row tile 8 of the 16 — 16 f32/i32 lanes, 32 u16 lanes per row.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
fn slab_times_tile_avx2<S: Semiring>(
    c: &mut ViewMut<'_, S::Elem>,
    pa: &PackedA<S::Elem>,
    b_tile: &[S::Elem],
    i0: usize,
    ib: usize,
    j0: usize,
    jb: usize,
    stride: usize,
    kb: usize,
) {
    match std::mem::size_of::<S::Elem>() {
        1 => slab_times_tile_generic::<S, 4, 64>(c, pa, b_tile, i0, ib, j0, jb, stride, kb),
        2 => slab_times_tile_generic::<S, 4, 32>(c, pa, b_tile, i0, ib, j0, jb, stride, kb),
        4 => slab_times_tile_generic::<S, 4, 16>(c, pa, b_tile, i0, ib, j0, jb, stride, kb),
        8 => slab_times_tile_generic::<S, 4, 8>(c, pa, b_tile, i0, ib, j0, jb, stride, kb),
        _ => slab_times_tile_generic::<S, 4, 16>(c, pa, b_tile, i0, ib, j0, jb, stride, kb),
    }
}

/// Width-agnostic slab×tile walk; `#[inline(always)]` (here and on the
/// micro-kernels) so the whole loop nest inlines into each
/// `#[target_feature]` wrapper above and is vectorized at that width.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn slab_times_tile_generic<S: Semiring, const MR: usize, const NR: usize>(
    c: &mut ViewMut<'_, S::Elem>,
    pa: &PackedA<S::Elem>,
    b_tile: &[S::Elem],
    i0: usize,
    ib: usize,
    j0: usize,
    jb: usize,
    stride: usize,
    kb: usize,
) {
    debug_assert_eq!(b_tile.len(), kb * stride);
    debug_assert!(jb <= stride && stride.is_multiple_of(NR));
    debug_assert_eq!(pa.mr, MR);
    for p in 0..ib.div_ceil(MR) {
        let a_panel = pa.panel(p);
        let ri = i0 + p * MR;
        let live = MR.min(ib - p * MR);
        let mut jj = 0;
        while jj < jb {
            let nr = NR.min(jb - jj);
            if live == MR && nr == NR {
                micro_tile_full::<S, MR, NR>(c, a_panel, b_tile, ri, j0 + jj, jj, stride, kb);
            } else {
                micro_tile_padded::<S, MR, NR>(
                    c,
                    a_panel,
                    b_tile,
                    ri,
                    j0 + jj,
                    jj,
                    stride,
                    kb,
                    live,
                    nr,
                );
            }
            jj += nr;
        }
    }
}

/// The register-tiled micro-kernel: a full `MR × NR` block of `C` held in a
/// fixed-size lane array. `j0` is the absolute `C` column, `jj` the column
/// offset inside the packed tile, `stride` the tile's padded row length.
///
/// # Safety argument (bounds-check elimination)
/// `a_panel` has exactly `MR * kb` elements (`PackedA::panel` slices it so,
/// checked), and every index is `l * MR + r` with `l < kb`, `r < MR`.
/// `b_tile` has `kb * stride` elements and every index is
/// `l * stride + jj + j` with `l < kb` and `jj + NR ≤ stride` (`jj` steps by
/// `NR` below `jb ≤ stride`, and `stride` is a multiple of `NR` by the
/// [`pad_quantum`] padding, asserted in `slab_times_tile_generic`). The `C` rows
/// are sliced *checked* to `NR` outside the loop. All invariants are
/// re-verified by `debug_assert!`s in debug builds; see DESIGN.md §11.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn micro_tile_full<S: Semiring, const MR: usize, const NR: usize>(
    c: &mut ViewMut<'_, S::Elem>,
    a_panel: &[S::Elem],
    b_tile: &[S::Elem],
    ri: usize,
    j0: usize,
    jj: usize,
    stride: usize,
    kb: usize,
) {
    debug_assert_eq!(a_panel.len(), MR * kb);
    debug_assert!(jj + NR <= stride && b_tile.len() == kb * stride);
    debug_assert!(ri + MR <= c.rows() && j0 + NR <= c.cols());

    let z = S::zero();
    let mut acc = [[z; NR]; MR];
    for (r, lane) in acc.iter_mut().enumerate() {
        lane.copy_from_slice(&c.row(ri + r)[j0..j0 + NR]);
    }
    for l in 0..kb {
        // SAFETY: l < kb, so l*MR+MR ≤ a_panel.len() and
        // l*stride + jj + NR ≤ b_tile.len() (debug_asserts above).
        let (a_col, b_row) = unsafe {
            (
                a_panel.get_unchecked(l * MR..l * MR + MR),
                b_tile.get_unchecked(l * stride + jj..l * stride + jj + NR),
            )
        };
        for (r, lane) in acc.iter_mut().enumerate() {
            // SAFETY: r < MR = a_col.len().
            let ar = unsafe { *a_col.get_unchecked(r) };
            for (aj, &bj) in lane.iter_mut().zip(b_row.iter()) {
                *aj = S::fma(*aj, ar, bj);
            }
        }
    }
    for (r, lane) in acc.iter().enumerate() {
        c.row_mut(ri + r)[j0..j0 + NR].copy_from_slice(lane);
    }
}

/// Edge micro-kernel for ragged `MR`/`NR` tails — same full-width
/// register-tiled loop as [`micro_tile_full`], not a scalar fallback. It can
/// read the full `NR` lane even past `jb` because packed `B` rows are padded
/// to the [`pad_quantum`] stride with `S::zero()`, and padded `A` lanes are
/// `S::zero()` too; the `⊕`-identity annihilates under `⊗`, so dead lanes
/// fold to no-ops. Only `live` rows × `nr` columns of the accumulator are
/// loaded from / stored to `C`; the dead lanes start at `S::zero()` and are
/// discarded. Reduction still folds `k` ascending per live element.
///
/// The bounds argument matches [`micro_tile_full`]: `jj + NR ≤ stride`
/// because `jj < jb ≤ stride`, `jj ≡ 0 (mod NR)`, and `NR | stride`.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn micro_tile_padded<S: Semiring, const MR: usize, const NR: usize>(
    c: &mut ViewMut<'_, S::Elem>,
    a_panel: &[S::Elem],
    b_tile: &[S::Elem],
    ri: usize,
    j0: usize,
    jj: usize,
    stride: usize,
    kb: usize,
    live: usize,
    nr: usize,
) {
    debug_assert_eq!(a_panel.len(), MR * kb);
    debug_assert!(live <= MR && nr <= NR);
    debug_assert!(jj + NR <= stride && b_tile.len() == kb * stride);
    debug_assert!(ri + live <= c.rows() && j0 + nr <= c.cols());

    let z = S::zero();
    let mut acc = [[z; NR]; MR];
    for (r, lane) in acc.iter_mut().enumerate().take(live) {
        lane[..nr].copy_from_slice(&c.row(ri + r)[j0..j0 + nr]);
    }
    for l in 0..kb {
        // SAFETY: identical to micro_tile_full — l < kb bounds both slices
        // (debug_asserts above).
        let (a_col, b_row) = unsafe {
            (
                a_panel.get_unchecked(l * MR..l * MR + MR),
                b_tile.get_unchecked(l * stride + jj..l * stride + jj + NR),
            )
        };
        for (r, lane) in acc.iter_mut().enumerate() {
            // SAFETY: r < MR = a_col.len().
            let ar = unsafe { *a_col.get_unchecked(r) };
            for (aj, &bj) in lane.iter_mut().zip(b_row.iter()) {
                *aj = S::fma(*aj, ar, bj);
            }
        }
    }
    for (r, lane) in acc.iter().enumerate().take(live) {
        c.row_mut(ri + r)[j0..j0 + nr].copy_from_slice(&lane[..nr]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm_naive;
    use crate::matrix::Matrix;
    use crate::semiring::{BoolOr, MinPlus, MinPlusSatI32, MinPlusSatU16, RealArith};

    fn lcg_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f32> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        Matrix::from_fn(rows, cols, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 1000) as f32 / 8.0
        })
    }

    fn lcg_matrix_int(rows: usize, cols: usize, seed: u64, modulo: u64) -> Matrix<u64> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        Matrix::from_fn(rows, cols, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) % modulo
        })
    }

    #[test]
    fn packed_matches_naive_on_micro_tile_edges() {
        // straddle every dispatchable MR (2/4/8) and NR (16/32) boundary
        for &m in &[1, 3, 4, 5, 8, 13, 17] {
            for &n in &[1, 15, 16, 17, 31, 32, 33] {
                for &k in &[0, 1, 5, 17] {
                    let a = lcg_matrix(m, k, 1);
                    let b = lcg_matrix(k, n, 2);
                    let mut c1 = lcg_matrix(m, n, 3);
                    let mut c2 = c1.clone();
                    gemm_naive::<MinPlus<f32>>(&mut c1.view_mut(), &a.view(), &b.view());
                    gemm_packed::<MinPlus<f32>>(&mut c2.view_mut(), &a.view(), &b.view());
                    assert!(c1.eq_exact(&c2), "mismatch at ({m},{n},{k})");
                }
            }
        }
    }

    #[test]
    fn packed_is_bit_identical_to_naive_for_float_sums() {
        // non-idempotent semiring with rounding: identical ⊕-order means
        // identical bits, which pins the ascending-k claim in the module docs
        let (m, n, k) = (37, 29, 300); // k > KC exercises multi-tile reduction
        let a = lcg_matrix(m, k, 11);
        let b = lcg_matrix(k, n, 12);
        let mut c1 = Matrix::filled(m, n, 0.0f32);
        let mut c2 = c1.clone();
        gemm_naive::<RealArith<f32>>(&mut c1.view_mut(), &a.view(), &b.view());
        gemm_packed::<RealArith<f32>>(&mut c2.view_mut(), &a.view(), &b.view());
        assert!(c1.eq_exact(&c2));
    }

    #[test]
    fn every_isa_variant_is_bit_identical() {
        // run the slab walk at each width supported by this machine on the
        // same operands; unsupported widths cannot run and are skipped
        let (m, n, k) = (21, 37, 40);
        let a = lcg_matrix(m, k, 61);
        let b = lcg_matrix(k, n, 62);
        let c0 = lcg_matrix(m, n, 63);
        let pb = PackedB::pack::<MinPlus<f32>>(&b.view());
        let mut oracle = c0.clone();
        gemm_naive::<MinPlus<f32>>(&mut oracle.view_mut(), &a.view(), &b.view());

        let mut variants: Vec<Isa> = vec![Isa::Baseline];
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx2") {
                variants.push(Isa::Avx2);
            }
            if is_x86_feature_detected!("avx512f")
                && is_x86_feature_detected!("avx512bw")
                && is_x86_feature_detected!("avx512vl")
            {
                variants.push(Isa::Avx512);
            }
        }
        for isa in variants {
            let (mr, _) = isa.micro_shape(std::mem::size_of::<f32>());
            let mut c = c0.clone();
            let mut pa = PackedA::new();
            {
                let mut cv = c.view_mut();
                let av = a.view();
                for kt in 0..pb.kt_count() {
                    let (k0, kb) = pb.row_range(kt);
                    pa.pack_slab::<MinPlus<f32>>(&av, 0, k0, m, kb, mr);
                    let stride = pb.padded_tile_width(0);
                    slab_times_tile::<MinPlus<f32>>(
                        isa,
                        &mut cv,
                        &pa,
                        pb.tile(kt, 0),
                        0,
                        m,
                        0,
                        n,
                        stride,
                        kb,
                    );
                }
            }
            assert!(oracle.eq_exact(&c), "mismatch for {isa:?}");
        }
    }

    #[test]
    fn packed_matches_naive_for_quantized_semirings() {
        // straddle the *widened* NR boundaries (u16 runs NR=64 on AVX-512)
        // and mix in the sentinel so saturation paths execute inside the
        // register-tiled loop
        for &m in &[1, 5, 8, 13] {
            for &n in &[1, 31, 33, 63, 64, 65, 129] {
                for &k in &[0, 1, 17] {
                    let au = Matrix::from_fn(m, k, |i, j| {
                        if (i + j) % 7 == 0 { u16::MAX } else { ((i * 31 + j * 7) % 999) as u16 }
                    });
                    let bu = Matrix::from_fn(k, n, |i, j| {
                        if (i * j) % 5 == 4 { u16::MAX } else { ((i * 13 + j * 3) % 999) as u16 }
                    });
                    let mut c1 = Matrix::filled(m, n, u16::MAX);
                    let mut c2 = c1.clone();
                    gemm_naive::<MinPlusSatU16>(&mut c1.view_mut(), &au.view(), &bu.view());
                    gemm_packed::<MinPlusSatU16>(&mut c2.view_mut(), &au.view(), &bu.view());
                    assert!(c1.eq_exact(&c2), "u16 mismatch at ({m},{n},{k})");

                    let ai = Matrix::from_fn(m, k, |i, j| {
                        if (i + j) % 7 == 0 { i32::MAX } else { ((i * 31 + j * 7) % 999) as i32 }
                    });
                    let bi = Matrix::from_fn(k, n, |i, j| {
                        if (i * j) % 5 == 4 { i32::MAX } else { ((i * 13 + j * 3) % 999) as i32 }
                    });
                    let mut c1 = Matrix::filled(m, n, i32::MAX);
                    let mut c2 = c1.clone();
                    gemm_naive::<MinPlusSatI32>(&mut c1.view_mut(), &ai.view(), &bi.view());
                    gemm_packed::<MinPlusSatI32>(&mut c2.view_mut(), &ai.view(), &bi.view());
                    assert!(c1.eq_exact(&c2), "i32 mismatch at ({m},{n},{k})");
                }
            }
        }
    }

    #[test]
    fn pad_stride_is_derived_from_element_width() {
        assert_eq!(pad_quantum::<u16>(), 64);
        assert_eq!(pad_quantum::<f32>(), 32);
        assert_eq!(pad_quantum::<i32>(), 32);
        assert_eq!(pad_quantum::<f64>(), 16);
        // every ISA's NR divides the pad quantum of the same element size
        let variants = [
            #[cfg(target_arch = "x86_64")]
            Isa::Avx512,
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2,
            Isa::Baseline,
        ];
        for isa in variants {
            for esz in [1usize, 2, 4, 8, 3] {
                let (_, nr) = isa.micro_shape(esz);
                assert_eq!(
                    pad_quantum_for(esz) % nr,
                    0,
                    "{isa:?} NR={nr} must divide pad {} for esz={esz}",
                    pad_quantum_for(esz)
                );
            }
        }
        // the stride a real packed operand uses honors the quantum: 33 u16
        // columns pad to 64, 33 f32 columns pad to 64 too but in *32s*
        let bu = Matrix::filled(4usize, 33usize, 0u16);
        let pu = PackedB::pack::<MinPlusSatU16>(&bu.view());
        assert_eq!(pu.padded_tile_width(0), 64);
        let bf = Matrix::filled(4usize, 33usize, 0.0f32);
        let pf = PackedB::pack::<MinPlus<f32>>(&bf.view());
        assert_eq!(pf.padded_tile_width(0), 64);
        let bd = Matrix::filled(4usize, 33usize, 0.0f64);
        let pd = PackedB::pack::<MinPlus<f64>>(&bd.view());
        assert_eq!(pd.padded_tile_width(0), 48);
    }

    #[test]
    fn serialized_round_trip_per_dtype() {
        // same shapes as the f32 round-trip test, but over each dtype with
        // its own (element-width-derived) pad stride
        for &(rows, cols, kc, nc) in &[(20, 16, 8, 8), (33, 47, 16, 32), (7, 300, 64, 256)] {
            let seed = rows as u64 * 31 + cols as u64;

            let raw = lcg_matrix_int(rows, cols, seed, 60000);
            let bu = Matrix::from_fn(rows, cols, |i, j| raw[(i, j)] as u16);
            let pb = PackedB::pack_tiled::<MinPlusSatU16>(&bu.view(), kc, nc);
            let blob = pb.to_bytes();
            assert_eq!(blob.len(), PackedB::<u16>::serialized_len(rows, cols, kc, nc));
            let back = PackedB::<u16>::from_bytes(&blob).unwrap();
            let mut out = Matrix::filled(rows, cols, 0u16);
            back.unpack_into(&mut out.view_mut());
            assert!(out.eq_exact(&bu), "u16 ({rows},{cols},{kc},{nc})");

            let raw = lcg_matrix_int(rows, cols, seed, 1 << 30);
            let bi = Matrix::from_fn(rows, cols, |i, j| raw[(i, j)] as i32);
            let pb = PackedB::pack_tiled::<MinPlusSatI32>(&bi.view(), kc, nc);
            let blob = pb.to_bytes();
            assert_eq!(blob.len(), PackedB::<i32>::serialized_len(rows, cols, kc, nc));
            let back = PackedB::<i32>::from_bytes(&blob).unwrap();
            let mut out = Matrix::filled(rows, cols, 0i32);
            back.unpack_into(&mut out.view_mut());
            assert!(out.eq_exact(&bi), "i32 ({rows},{cols},{kc},{nc})");

            let raw = lcg_matrix_int(rows, cols, seed, 1000);
            let bd = Matrix::from_fn(rows, cols, |i, j| raw[(i, j)] as f64 / 8.0);
            let pb = PackedB::pack_tiled::<MinPlus<f64>>(&bd.view(), kc, nc);
            let blob = pb.to_bytes();
            assert_eq!(blob.len(), PackedB::<f64>::serialized_len(rows, cols, kc, nc));
            let back = PackedB::<f64>::from_bytes(&blob).unwrap();
            let mut out = Matrix::filled(rows, cols, 0.0f64);
            back.unpack_into(&mut out.view_mut());
            assert!(out.eq_exact(&bd), "f64 ({rows},{cols},{kc},{nc})");
        }
    }

    #[test]
    fn decode_rejects_cross_dtype_blobs_of_equal_width() {
        // i32 and f32 share the 4-byte width *and* the 32-element pad, so
        // only the dtype code in the header can tell them apart
        let b = Matrix::filled(8usize, 8usize, 7i32);
        let blob = PackedB::pack_tiled::<MinPlusSatI32>(&b.view(), 8, 8).to_bytes();
        assert_eq!(
            PackedB::<f32>::from_bytes(&blob).unwrap_err(),
            PackDecodeError::WrongElemType { expected: "f32", got: "i32" }
        );
        // and the error renders both names
        let msg = PackedB::<f32>::from_bytes(&blob).unwrap_err().to_string();
        assert!(msg.contains("i32") && msg.contains("f32"), "{msg}");
        // width mismatch is still reported as a width mismatch
        assert_eq!(
            PackedB::<u16>::from_bytes(&blob).unwrap_err(),
            PackDecodeError::WrongElemSize { expected: 2, got: 4 }
        );
    }

    #[test]
    fn packed_works_on_strided_subviews() {
        let pa = lcg_matrix(30, 30, 6);
        let pb = lcg_matrix(30, 30, 7);
        let mut pc = lcg_matrix(30, 30, 8);
        let mut pc2 = pc.clone();
        let a = pa.subview(2, 3, 9, 11);
        let b = pb.subview(1, 4, 11, 7);
        gemm_naive::<MinPlus<f32>>(&mut pc.subview_mut(3, 3, 9, 7), &a, &b);
        gemm_packed::<MinPlus<f32>>(&mut pc2.subview_mut(3, 3, 9, 7), &a, &b);
        assert!(pc.eq_exact(&pc2));
    }

    #[test]
    fn shared_packed_b_reused_across_calls() {
        let b = lcg_matrix(40, 24, 21);
        let pb = PackedB::pack::<MinPlus<f32>>(&b.view());
        for seed in 0..4 {
            let a = lcg_matrix(10, 40, 30 + seed);
            let mut c1 = Matrix::filled(10, 24, f32::INFINITY);
            let mut c2 = c1.clone();
            gemm_naive::<MinPlus<f32>>(&mut c1.view_mut(), &a.view(), &b.view());
            gemm_packed_with_b::<MinPlus<f32>>(&mut c2.view_mut(), &a.view(), &pb);
            assert!(c1.eq_exact(&c2), "mismatch at seed={seed}");
        }
    }

    #[test]
    fn repack_reuses_buffer_across_shapes() {
        let b1 = lcg_matrix(20, 16, 41);
        let b2 = lcg_matrix(8, 24, 42);
        let mut pb = PackedB::pack::<MinPlus<f32>>(&b1.view());
        pb.repack::<MinPlus<f32>>(&b2.view());
        let a = lcg_matrix(6, 8, 43);
        let mut c1 = Matrix::filled(6, 24, f32::INFINITY);
        let mut c2 = c1.clone();
        gemm_naive::<MinPlus<f32>>(&mut c1.view_mut(), &a.view(), &b2.view());
        gemm_packed_with_b::<MinPlus<f32>>(&mut c2.view_mut(), &a.view(), &pb);
        assert!(c1.eq_exact(&c2));
    }

    #[test]
    fn packed_handles_bool_semiring() {
        let a = Matrix::from_fn(9, 13, |i, j| (i * 7 + j) % 3 == 0);
        let b = Matrix::from_fn(13, 10, |i, j| (i + j * 5) % 4 == 0);
        let mut c1 = Matrix::filled(9, 10, false);
        let mut c2 = c1.clone();
        gemm_naive::<BoolOr>(&mut c1.view_mut(), &a.view(), &b.view());
        gemm_packed::<BoolOr>(&mut c2.view_mut(), &a.view(), &b.view());
        assert!(c1.eq_exact(&c2));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn packed_shape_mismatch_panics() {
        let a = Matrix::filled(2, 3, 0.0f32);
        let b = Matrix::filled(2, 2, 0.0f32);
        let mut c = Matrix::filled(2, 2, 0.0f32);
        gemm_packed::<MinPlus<f32>>(&mut c.view_mut(), &a.view(), &b.view());
    }

    #[test]
    fn serialized_round_trip_is_indistinguishable_from_the_original() {
        // ragged shapes straddling KC/NC and the pad quantum
        for &(rows, cols, kc, nc) in
            &[(20, 16, 8, 8), (33, 47, 16, 32), (7, 300, 64, 256), (300, 13, 256, 512)]
        {
            let b = lcg_matrix(rows, cols, rows as u64 * 31 + cols as u64);
            let pb = PackedB::pack_tiled::<MinPlus<f32>>(&b.view(), kc, nc);
            let blob = pb.to_bytes();
            assert_eq!(
                blob.len(),
                PackedB::<f32>::serialized_len(rows, cols, kc, nc),
                "({rows},{cols},{kc},{nc})"
            );
            let back = PackedB::<f32>::from_bytes(&blob).unwrap();
            assert_eq!((back.rows(), back.cols()), (rows, cols));
            for kt in 0..pb.kt_count() {
                for jt in 0..pb.jt_count() {
                    assert_eq!(pb.tile(kt, jt), back.tile(kt, jt), "tile ({kt},{jt})");
                }
            }
            // and the rebuilt pack feeds the kernel bit-identically
            let a = lcg_matrix(9, rows, 77);
            let mut c1 = Matrix::filled(9, cols, f32::INFINITY);
            let mut c2 = c1.clone();
            gemm_packed_with_b::<MinPlus<f32>>(&mut c1.view_mut(), &a.view(), &pb);
            gemm_packed_with_b::<MinPlus<f32>>(&mut c2.view_mut(), &a.view(), &back);
            assert!(c1.eq_exact(&c2));
        }
    }

    #[test]
    fn unpack_into_inverts_repack() {
        let b = lcg_matrix(37, 43, 91);
        let pb = PackedB::pack_tiled::<MinPlus<f32>>(&b.view(), 16, 32);
        let mut out = Matrix::filled(37, 43, 0.0f32);
        pb.unpack_into(&mut out.view_mut());
        assert!(out.eq_exact(&b));
    }

    #[test]
    fn decode_rejects_corruption_with_typed_errors() {
        let b = lcg_matrix(10, 10, 5);
        let pb = PackedB::pack_tiled::<MinPlus<f32>>(&b.view(), 8, 8);
        let blob = pb.to_bytes();

        // truncated payload
        let got = PackedB::<f32>::from_bytes(&blob[..blob.len() - 3]);
        assert!(matches!(got, Err(PackDecodeError::Truncated { .. })), "{got:?}");
        // truncated header
        let got = PackedB::<f32>::from_bytes(&blob[..10]);
        assert!(matches!(got, Err(PackDecodeError::Truncated { .. })), "{got:?}");
        // bad magic
        let mut bad = blob.clone();
        bad[0] = b'X';
        assert_eq!(PackedB::<f32>::from_bytes(&bad).unwrap_err(), PackDecodeError::BadMagic);
        // bad version
        let mut bad = blob.clone();
        bad[4] = 99;
        assert_eq!(PackedB::<f32>::from_bytes(&bad).unwrap_err(), PackDecodeError::BadVersion(99));
        // wrong element width (decode as f64)
        assert_eq!(
            PackedB::<f64>::from_bytes(&blob).unwrap_err(),
            PackDecodeError::WrongElemSize { expected: 8, got: 4 }
        );
        // zero tile size in the header must not reach div_ceil(0)
        let mut bad = blob.clone();
        bad[28..36].fill(0); // kc = 0
        assert_eq!(PackedB::<f32>::from_bytes(&bad).unwrap_err(), PackDecodeError::Inconsistent);
        // payload length contradicting the declared shape
        let mut bad = blob;
        bad[44] ^= 1;
        assert_eq!(PackedB::<f32>::from_bytes(&bad).unwrap_err(), PackDecodeError::Inconsistent);
    }

    #[test]
    fn aligned_buf_is_cache_line_aligned_for_floats() {
        let b = lcg_matrix(33, 17, 50);
        let pb = PackedB::pack::<MinPlus<f32>>(&b.view());
        let addr = pb.tile(0, 0).as_ptr() as usize;
        assert_eq!(addr % ALIGN, 0, "packed B payload not 64B-aligned");
    }
}
