//! Fig. 6 — out-of-GPU SRGEMM throughput heatmap: operand size (vertices)
//! × tile-buffer dimension m_x, block size fixed at the paper's b = 768.
//!
//! Expected shape (paper §5.3.1): performance is close to peak even for
//! 2k×2k buffers when n is large; small operands with huge buffers waste
//! the pipeline (bottom-right corner of the paper's heatmap dips to
//! ~2.2 Tflop/s).

use apsp_bench::{arg, Table};
use gpu_sim::{oog_srgemm_model, GpuSpec, OogConfig, SimGpu};

fn main() {
    let b: usize = arg("--block", 768);
    let spec = GpuSpec::summit_v100();
    let gpu = SimGpu::new(spec);
    println!("== Fig. 6: ooGSrGemm Gflop/s, vertices × buffer dimension (block = {b}, 3 streams) ==\n");

    let buffers = [1024usize, 2048, 4096, 8192];
    let vertices = [65_536usize, 32_768, 16_384, 8_192, 4_096]; // paper's row order
    let table = Table::new(&[
        ("vertices", 9),
        ("mx=1k", 9),
        ("mx=2k", 9),
        ("mx=4k", 9),
        ("mx=8k", 9),
    ]);

    for &n in &vertices {
        let mut cells = vec![n.to_string()];
        for &mx in &buffers {
            let cfg = OogConfig::new(mx, mx, 3);
            match oog_srgemm_model(&gpu, &cfg, n, n, b, 4) {
                Ok(out) => cells.push(format!("{:.1e}", out.gflops() * 1e9 / 1e9)),
                Err(_) => cells.push("oom".into()),
            }
        }
        table.row(&cells);
    }
    println!("\npaper: ≈6.2e3 Gflop/s at 64k×1k-2k buffers, dropping to ≈2.2e3 at 4k vertices × 8k buffers");
}
