//! 1-D row-partitioned Floyd-Warshall — the pre-blocked distributed
//! formulation of Jenq & Sahni (the paper's §6: "the first 2D
//! distributed-memory algorithm for the APSP without blocking using n
//! global synchronization"), kept as a comparator.
//!
//! Rows are dealt cyclically over `P` ranks. Each of the `n` scalar
//! iterations broadcasts the current pivot row and relaxes the local rows —
//! `n` global broadcasts (vs `n/b` for the blocked 2-D algorithm) and
//! rank-1 updates with O(1) arithmetic intensity (vs GEMM). Both weaknesses
//! are what the paper's blocked formulation fixes; the schedule model in
//! [`crate::schedule::simulate_oned`] prices them.

use mpi_sim::{Comm, CommError};
use srgemm::matrix::Matrix;
use srgemm::semiring::Semiring;

/// Tag for the row-gather at the end.
const GATHER_TAG: u64 = 0x1D;

/// Run 1-D cyclic-row Floyd-Warshall over `comm`. `global` must be
/// identical on all ranks; returns the solved matrix on rank 0. A broken
/// pivot broadcast or gather surfaces as the typed [`CommError`].
pub fn oned_apsp<S: Semiring>(
    comm: &Comm,
    global: &Matrix<S::Elem>,
) -> Result<Option<Matrix<S::Elem>>, CommError> {
    assert!(
        S::IDEMPOTENT_ADD,
        "distributed FW relies on an idempotent ⊕ ({} is not)",
        S::NAME
    );
    let n = global.rows();
    assert_eq!(n, global.cols(), "matrix must be square");
    let p = comm.size();
    let me = comm.rank();

    // my rows, cyclic: i ≡ me (mod p); seed the diagonal with 1̄
    let my_rows: Vec<usize> = (me..n).step_by(p).collect();
    let mut local: Vec<Vec<S::Elem>> = my_rows
        .iter()
        .map(|&i| {
            let mut row = global.row(i).to_vec();
            row[i] = S::add(row[i], S::one());
            row
        })
        .collect();

    for k in 0..n {
        // owner broadcasts the pivot row (post-update — row k is fixed
        // point for iteration k since d[k][k] = 1̄); the pivot broadcast is
        // this formulation's PanelBcast, the rank-1 relax its OuterUpdate
        let owner = k % p;
        let pivot: Vec<S::Elem> = {
            let _p = comm.phase("PanelBcast");
            comm.bcast(owner, (owner == me).then(|| local[k / p].clone()))?
        };
        // relax every local row
        let _p = comm.phase("OuterUpdate");
        for (li, &i) in my_rows.iter().enumerate() {
            let d_ik = local[li][k];
            let row = &mut local[li];
            for j in 0..n {
                row[j] = S::add(row[j], S::mul(d_ik, pivot[j]));
            }
            let _ = i;
        }
    }

    // gather rows to rank 0
    if me != 0 {
        for (li, &i) in my_rows.iter().enumerate() {
            comm.send(0, GATHER_TAG + i as u64, local[li].clone())?;
        }
        Ok(None)
    } else {
        let mut out = global.clone();
        for (li, &i) in my_rows.iter().enumerate() {
            out.row_mut(i).copy_from_slice(&local[li]);
        }
        for src in 1..p {
            for i in (src..n).step_by(p) {
                let row: Vec<S::Elem> = comm.recv(src, GATHER_TAG + i as u64)?;
                out.row_mut(i).copy_from_slice(&row);
            }
        }
        Ok(Some(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fw_seq::fw_seq;
    use apsp_graph::generators::{self, WeightKind};
    use mpi_sim::Runtime;
    use srgemm::MinPlusF32;

    #[test]
    fn matches_sequential_fw() {
        for (n, p, seed) in [(17usize, 3usize, 1u64), (24, 4, 2), (8, 8, 3), (5, 7, 4)] {
            let g = generators::erdos_renyi(n, 0.3, WeightKind::small_ints(), seed);
            let input = g.to_dense();
            let mut want = input.clone();
            fw_seq::<MinPlusF32>(&mut want);
            let out = Runtime::new(p).run(|comm| oned_apsp::<MinPlusF32>(&comm, &input).unwrap());
            let got = out.into_iter().flatten().next().expect("rank 0 output");
            assert!(want.eq_exact(&got), "n={n} p={p}");
        }
    }

    #[test]
    fn oned_moves_more_pivot_traffic_than_2d_blocked() {
        // same problem, same rank count: the 1-D formulation issues n
        // broadcasts (one per vertex) vs n/b for the 2-D blocked algorithm
        let n = 32;
        let input = generators::uniform_dense(n, WeightKind::small_ints(), 9).to_dense();

        let rt = Runtime::new(4);
        let (_, t1d) = rt.run_traced(|comm| oned_apsp::<MinPlusF32>(&comm, &input).unwrap());

        let cfg = crate::dist::FwConfig::new(8, crate::dist::Variant::Baseline);
        let (_, t2d) =
            crate::dist::distributed_apsp::<MinPlusF32>(2, 2, &cfg, &input, None).expect("2-D run");

        assert!(
            t1d.total_msgs > t2d.total_msgs,
            "1-D should send more messages: {} vs {}",
            t1d.total_msgs,
            t2d.total_msgs
        );
    }
}
