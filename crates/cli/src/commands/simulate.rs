//! `apsp simulate` — predict a run on the calibrated Summit model.

use apsp_core::schedule::{
    default_node_grid, optimal_node_grid, simulate, simulate_node_fault, simulate_with_trace,
    FaultedOutcome, ScheduleConfig,
};
use cluster_sim::MachineSpec;

use crate::args::Args;

/// Entry point.
pub fn run(tokens: &[String]) -> Result<(), String> {
    if tokens.iter().any(|t| t == "--help") {
        println!(
            "apsp simulate --nodes <N> --n <VERTICES>
  --variant <baseline|pipelined|async|offload|come>  preset (default async)
  --schedule <bulksync|lookahead>                override the schedule axis
  --bcast <tree|ring|ring:CHUNKS>                override the PanelBcast axis
  --exec <incore|offload>                        override the execution axis
  --block <N>                                    (default 768)
  --reorder / --no-reorder                       node-grid placement
  --trace <FILE>                                 write the simulated schedule
                                                 as Chrome trace_events JSON
  --fault node:<ID>@<SECS>                       kill every resource of node
                                                 <ID> at simulated second <SECS>
  --recv-timeout <SECS>                          failure-detection delay added
                                                 to a stall report (default 30)
Prints predicted seconds, Pflop/s, effective bandwidth, GPU utilization."
        );
        return Ok(());
    }
    let args = Args::parse(tokens)?;
    let nodes: usize = args.req("nodes")?;
    let n: usize = args.req("n")?;
    let (schedule, bcast, exec) = super::resolve_axes(&args, "async")?;
    let (kr, kc) = if args.has_flag("no-reorder") {
        default_node_grid(nodes)
    } else {
        optimal_node_grid(nodes)
    };
    let spec = MachineSpec::summit(nodes);
    let mut cfg = ScheduleConfig::with_axes(n, schedule, bcast, exec, kr, kc);
    cfg.block = args.opt("block", 768)?;

    if let Some(spec_str) = args.opt_str("fault") {
        let recv_timeout = super::parse_recv_timeout(&args)?
            .map(|d| d.as_secs_f64())
            .unwrap_or(30.0);
        let (node, died_at) = parse_node_fault(spec_str)?;
        if args.opt_str("trace").is_some() {
            return Err("--fault and --trace cannot be combined (a stalled schedule has no complete trace)".into());
        }
        return match simulate_node_fault(&spec, &cfg, node, died_at, recv_timeout) {
            Err(e) => Err(format!("infeasible: {e}")),
            Ok(FaultedOutcome::Completed(out)) => {
                println!(
                    "fault node:{node}@{died_at}s never bites: schedule completes at {:.2} s",
                    out.seconds
                );
                Ok(())
            }
            Ok(FaultedOutcome::Stalled(stall)) => Err(format!("fault: {stall}")),
        };
    }

    let (sim, trace_json) = if let Some(path) = args.opt_str("trace") {
        let (out, json) = simulate_with_trace(&spec, &cfg).map_err(|e| format!("infeasible: {e}"))?;
        (Ok(out), Some((path.to_string(), json)))
    } else {
        (simulate(&spec, &cfg), None)
    };
    match sim {
        Ok(out) => {
            println!("{} on {nodes} Summit nodes (K = {kr}x{kc}), n = {n}, b = {}:", cfg.legend(), cfg.block);
            println!("  time                {:>12.2} s", out.seconds);
            println!("  rate                {:>12.3} Pflop/s", out.pflops);
            println!(
                "  fraction of peak    {:>12.1} %",
                100.0 * out.pflops * 1e15 / spec.total_flops()
            );
            println!("  effective bandwidth {:>12.2} GB/s/node", out.effective_bw / 1e9);
            println!("  GPU utilization     {:>12.1} %", 100.0 * out.gpu_utilization);
            if let Some((path, json)) = trace_json {
                std::fs::write(&path, json).map_err(|e| format!("write {path}: {e}"))?;
                println!("wrote schedule trace to {path} (open in chrome://tracing or Perfetto)");
            }
            Ok(())
        }
        Err(e) => Err(format!("infeasible: {e}")),
    }
}

/// Parse a `simulate --fault` spec: `node:<id>@<seconds>`.
fn parse_node_fault(spec: &str) -> Result<(usize, f64), String> {
    let err = || format!("bad fault spec '{spec}' (node:<id>@<seconds>)");
    let rest = spec.strip_prefix("node:").ok_or_else(err)?;
    let (node, at) = rest.split_once('@').ok_or_else(err)?;
    let node: usize = node.parse().map_err(|_| err())?;
    let at: f64 = at.parse().map_err(|_| err())?;
    if !(at >= 0.0 && at.is_finite()) {
        return Err(err());
    }
    Ok((node, at))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn simulates_a_feasible_config() {
        run(&toks("--nodes 16 --n 100000 --variant async")).unwrap();
    }

    #[test]
    fn reports_the_memory_wall() {
        let err = run(&toks("--nodes 64 --n 1664511 --variant baseline")).unwrap_err();
        assert!(err.contains("beyond GPU memory"));
        // …but offload gets through (the paper's 1.66M-vertex run)
        run(&toks("--nodes 64 --n 1664511 --variant offload")).unwrap();
    }

    #[test]
    fn trace_flag_writes_schedule_json() {
        let dir = std::env::temp_dir().join(format!("apsp-sim-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("sched.json");
        run(&toks(&format!("--nodes 4 --n 50000 --variant pipelined --trace {}", out.display()))).unwrap();
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"PanelBcast\"") && json.contains("\"gpu0\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_unknown_variant() {
        assert!(run(&toks("--nodes 4 --n 1000 --variant warp")).is_err());
    }

    #[test]
    fn node_fault_reports_a_typed_stall_and_fails_the_command() {
        let err =
            run(&toks("--nodes 4 --n 50000 --variant pipelined --fault node:1@0.0")).unwrap_err();
        assert!(err.contains("node 1 died") && err.contains("recv timeout"), "{err}");
        // --recv-timeout shifts the reported detection time
        let err = run(&toks(
            "--nodes 4 --n 50000 --variant pipelined --fault node:1@0.0 --recv-timeout 5",
        ))
        .unwrap_err();
        assert!(err.contains("detect the failure"), "{err}");
        // a fault after the makespan completes cleanly
        run(&toks("--nodes 4 --n 50000 --variant pipelined --fault node:1@1e9")).unwrap();
        // malformed specs and impossible nodes are input errors
        assert!(run(&toks("--nodes 4 --n 50000 --fault gpu:1@0")).is_err());
        assert!(run(&toks("--nodes 4 --n 50000 --fault node:9@0")).is_err());
    }

    #[test]
    fn come_preset_clears_the_memory_wall() {
        // the composed system keeps offload's host-memory residency, so the
        // paper's 1.66M-vertex configuration stays feasible
        run(&toks("--nodes 64 --n 1664511 --variant come")).unwrap();
    }

    #[test]
    fn axis_overrides_compose_with_presets() {
        // baseline preset pushed onto the offload exec axis clears the wall
        run(&toks("--nodes 64 --n 1664511 --variant baseline --exec offload")).unwrap();
        // and an explicit ring depth parses
        run(&toks("--nodes 16 --n 100000 --bcast ring:32 --schedule lookahead")).unwrap();
    }
}
