//! Fig. 3 — effect of rank reordering: effective per-node bandwidth for
//! every node-grid factorization (K_r, K_c) at each node count,
//! n = 196,608 vertices (the paper's setting).
//!
//! Expected shape (paper §5.2.1): at every node count the maximum effective
//! bandwidth occurs at K_r ≈ K_c, the worst when K_r and K_c are far apart;
//! the single-node case exceeds the 25 GB/s NIC limit because nothing
//! crosses a NIC.

use apsp_bench::{arg, Table};
use apsp_core::dist::Variant;
use apsp_core::schedule::{simulate_unchecked, ScheduleConfig};
use cluster_sim::MachineSpec;

fn main() {
    let n: usize = arg("--n", 196_608);
    println!("== Fig. 3: effective bandwidth vs node-grid shape, n = {n} ==\n");
    let table = Table::new(&[
        ("nodes", 6),
        ("Kr", 4),
        ("Kc", 4),
        ("GB/s", 8),
        ("note", 18),
    ]);

    for exp in 0..=6u32 {
        let nodes = 1usize << exp;
        let spec = MachineSpec::summit(nodes);
        let mut best: Option<(f64, usize, usize)> = None;
        let mut rows = Vec::new();
        let mut r = 1;
        while r <= nodes {
            if nodes.is_multiple_of(r) {
                let (kr, kc) = (r, nodes / r);
                // memory-unchecked: Fig. 3 is a pure communication sweep
                let cfg = ScheduleConfig::new(n, Variant::Pipelined, kr, kc);
                let out = simulate_unchecked(&spec, &cfg);
                let gbs = out.effective_bw / 1e9;
                if best.is_none_or(|(b, _, _)| gbs > b) {
                    best = Some((gbs, kr, kc));
                }
                rows.push((kr, kc, format!("{gbs:.2}"), String::new()));
            }
            r += 1;
        }
        for (kr, kc, gbs, note) in rows {
            let mark = match best {
                Some((_, bkr, bkc)) if (kr, kc) == (bkr, bkc) => "<-- best",
                _ => note.leak(),
            };
            table.row(&[
                nodes.to_string(),
                kr.to_string(),
                kc.to_string(),
                gbs,
                mark.to_string(),
            ]);
        }
    }
    println!("\npaper: best bandwidth always at Kr ≈ Kc; single node exceeds the 25 GB/s NIC limit");
}
