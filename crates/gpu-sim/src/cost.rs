//! Closed-form offload cost model (paper §4.5).
//!
//! For `C ← C ⊕ A ⊗ B` with `A ∈ R^{m×k}`, `B ∈ R^{k×n}` staged through the
//! GPU in tiles:
//!
//! * `t0 = 2mnk · t_f` — SRGEMM flops,
//! * `t1 = (mn + nk + mk) · t_hd` — host↔device traffic,
//! * `t2 = 3mn · t_m` — hostUpdate DRAM traffic,
//!
//! and the achievable total depends on how many CUDA streams are available
//! to overlap the three: 1 stream ⇒ `t0+t1+t2`; 2 streams ⇒ best pairing;
//! ≥3 streams ⇒ `max(t0, t1, t2)`. Peak throughput requires
//! `t0 ≥ max(t1, t2)`, i.e. Eq. 5's minimum block size
//! `k ≥ max(t_hd/2t_f, 3t_m/2t_f)`.
//!
//! The host-level out-of-core tier adds a **fourth engine**: when the
//! operand lives on disk and is staged through host RAM (`apsp_core::ooc`),
//! `t3 = (2mn + nk + mk) · t_disk` models the tile traffic — `C` tiles read
//! *and* written back each pass, `A`/`B` panels read once. `t3 = 0`
//! recovers the three-engine device model exactly. The same Eq. 5 analysis
//! applied to the disk tier ([`min_block_size_disk`]) predicts the tile
//! size at which the packed-GEMM cores outrun the disk.

use crate::spec::GpuSpec;

/// The §4.5 cost terms, in seconds, plus the out-of-core disk term.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OffloadCosts {
    /// SRGEMM compute time.
    pub t0: f64,
    /// Host↔device transfer time.
    pub t1: f64,
    /// hostUpdate (DRAM) time.
    pub t2: f64,
    /// Disk↔RAM tile traffic time (0 when no out-of-core tier is in play).
    pub t3: f64,
}

impl OffloadCosts {
    /// Evaluate the model for an `m×n×k` product of `elem_bytes`-sized
    /// elements on `spec`. No disk tier: `t3 = 0`.
    pub fn new(spec: &GpuSpec, m: usize, n: usize, k: usize, elem_bytes: usize) -> Self {
        let (m, n, k, eb) = (m as f64, n as f64, k as f64, elem_bytes as f64);
        let t_f = 1.0 / spec.srgemm_flops;
        let t_hd = eb / spec.h2d_bw;
        let t_m = eb / spec.host_mem_bw;
        OffloadCosts {
            t0: 2.0 * m * n * k * t_f,
            t1: (m * n + n * k + m * k) * t_hd,
            t2: 3.0 * m * n * t_m,
            t3: 0.0,
        }
    }

    /// [`OffloadCosts::new`] with the tensor-like lane-width `t_f` variant:
    /// the SRGEMM term runs at [`GpuSpec::srgemm_flops_for`]`(elem_bytes)`
    /// — a fixed-bytes-per-cycle datapath, so `u16` elements double the
    /// flop rate while every traffic term shrinks with the element width
    /// too. `elem_bytes = 4` reproduces [`OffloadCosts::new`] exactly.
    pub fn new_quantized(spec: &GpuSpec, m: usize, n: usize, k: usize, elem_bytes: usize) -> Self {
        let mut c = Self::new(spec, m, n, k, elem_bytes);
        c.t0 = 2.0 * m as f64 * n as f64 * k as f64 / spec.srgemm_flops_for(elem_bytes);
        c
    }

    /// [`OffloadCosts::new`] with the out-of-core disk tier engaged:
    /// `C` tiles cross the disk twice (read + write-back) and the `A`/`B`
    /// panels once, at `disk_bw` bytes/s.
    pub fn with_disk(
        spec: &GpuSpec,
        m: usize,
        n: usize,
        k: usize,
        elem_bytes: usize,
        disk_bw: f64,
    ) -> Self {
        let mut c = Self::new(spec, m, n, k, elem_bytes);
        let (m, n, k, eb) = (m as f64, n as f64, k as f64, elem_bytes as f64);
        c.t3 = (2.0 * m * n + n * k + m * k) * eb / disk_bw;
        c
    }

    /// Predicted wall time with `s` streams: the best assignment of the
    /// four engine terms to `s` concurrent lanes (minimize the slowest
    /// lane's serialized sum). 1 lane ⇒ full sum; ≥4 ⇒ every term overlaps,
    /// `max(t0..t3)`. With `t3 = 0` this reproduces the paper's
    /// three-engine regimes exactly.
    pub fn predicted_time(&self, s: usize) -> f64 {
        let ops = [self.t0, self.t1, self.t2, self.t3];
        match s {
            0 => f64::INFINITY,
            1 => ops.iter().sum(),
            s if s >= 4 => ops.iter().fold(0.0_f64, |m, &t| m.max(t)),
            s => {
                // 4 terms over 2 or 3 lanes: s⁴ ≤ 81 assignments — enumerate.
                let mut best = f64::INFINITY;
                for mut assign in 0..s.pow(4) {
                    let mut lane = [0.0_f64; 4];
                    for &t in &ops {
                        lane[assign % s] += t;
                        assign /= s;
                    }
                    best = best.min(lane[..s].iter().fold(0.0_f64, |m, &t| m.max(t)));
                }
                best
            }
        }
    }

    /// Is the pipeline compute-bound (`t0 ≥ max(t1, t2, t3)`) — the
    /// condition for running at the SRGEMM rate once every stage overlaps?
    pub fn compute_bound(&self) -> bool {
        self.t0 >= self.t1.max(self.t2).max(self.t3)
    }
}

/// Eq. 5: the smallest inner (block) dimension `k` for which the offload
/// pipeline is compute-bound, `k ≥ max(t_hd/2t_f, 3t_m/2t_f)`, evaluated
/// with the theoretical peak flop rate as the paper does ("we estimate
/// minimum block size of 624").
pub fn min_block_size(spec: &GpuSpec, elem_bytes: usize) -> f64 {
    let eb = elem_bytes as f64;
    let t_f = 1.0 / spec.peak_flops;
    let t_hd = eb / spec.h2d_bw;
    let t_m = eb / spec.host_mem_bw;
    (t_hd / (2.0 * t_f)).max(3.0 * t_m / (2.0 * t_f))
}

/// Eq. 5 transposed to the disk tier of the out-of-core FW driver: with
/// `m = n` large, the dominant disk term is the `C` tile's read + write-back
/// (`2mn · t_disk` per pass), against `2mnk · t_f` of packed-GEMM work, so
/// the pipeline is compute-bound once the inner (tile) dimension satisfies
/// `k ≥ t_disk / t_f = flops · elem_bytes / disk_bw`. `flops` is the
/// sustained rate of the host GEMM engine (cores, not the device).
pub fn min_block_size_disk(flops: f64, elem_bytes: usize, disk_bw: f64) -> f64 {
    flops * elem_bytes as f64 / disk_bw
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summit_min_block_size_reproduces_paper_estimate() {
        // paper §5.3.1: "we estimate minimum block size of 624"
        let k = min_block_size(&GpuSpec::summit_v100(), 4);
        assert!((k - 624.0).abs() < 1.0, "got {k}");
    }

    #[test]
    fn large_k_is_compute_bound_small_k_is_not() {
        let spec = GpuSpec::summit_v100();
        let big = OffloadCosts::new(&spec, 8192, 8192, 768, 4);
        assert!(big.compute_bound());
        let small = OffloadCosts::new(&spec, 8192, 8192, 128, 4);
        assert!(!small.compute_bound());
    }

    #[test]
    fn stream_count_regimes_are_ordered() {
        let spec = GpuSpec::summit_v100();
        let c = OffloadCosts::new(&spec, 4096, 4096, 512, 4);
        let s1 = c.predicted_time(1);
        let s2 = c.predicted_time(2);
        let s3 = c.predicted_time(3);
        let s4 = c.predicted_time(4);
        assert!(s1 > s2);
        assert!(s2 >= s3);
        assert_eq!(s3, s4);
        assert_eq!(s3, c.t0.max(c.t1).max(c.t2));
    }

    #[test]
    fn two_stream_pairing_picks_the_best() {
        let c = OffloadCosts { t0: 10.0, t1: 2.0, t2: 3.0, t3: 0.0 };
        // best: overlap t0 with (t1+t2)=5 → 10
        assert_eq!(c.predicted_time(2), 10.0);
        let c = OffloadCosts { t0: 4.0, t1: 5.0, t2: 6.0, t3: 0.0 };
        // pairings: max(4, 11)=11, max(5,10)=10, max(6,9)=9 → 9
        assert_eq!(c.predicted_time(2), 9.0);
    }

    #[test]
    fn fourth_engine_partitions_work_across_lanes() {
        let c = OffloadCosts { t0: 6.0, t1: 4.0, t2: 3.0, t3: 5.0 };
        // 1 lane: everything serialized
        assert_eq!(c.predicted_time(1), 18.0);
        // 2 lanes: best split is {6,3} vs {4,5} → 9
        assert_eq!(c.predicted_time(2), 9.0);
        // 3 lanes: {6} {5} {4,3} → 7
        assert_eq!(c.predicted_time(3), 7.0);
        // ≥4 lanes: full overlap → max
        assert_eq!(c.predicted_time(4), 6.0);
        assert_eq!(c.predicted_time(7), 6.0);
        assert!(c.compute_bound()); // t0 dominates every other engine
        let slow_disk = OffloadCosts { t3: 9.0, ..c };
        assert!(!slow_disk.compute_bound());
        assert_eq!(slow_disk.predicted_time(4), 9.0);
    }

    #[test]
    fn lane_width_variant_scales_t_f_with_element_bytes() {
        let spec = GpuSpec::summit_v100();
        // f32 is the calibration point: the quantized model is the identity
        let f32c = OffloadCosts::new(&spec, 4096, 4096, 512, 4);
        assert_eq!(OffloadCosts::new_quantized(&spec, 4096, 4096, 512, 4), f32c);
        // u16: twice the lanes → half the SRGEMM time, half the traffic
        let u16c = OffloadCosts::new_quantized(&spec, 4096, 4096, 512, 2);
        assert!((u16c.t0 - f32c.t0 / 2.0).abs() < 1e-12);
        assert!((u16c.t1 - f32c.t1 / 2.0).abs() < 1e-12);
        assert!((u16c.t2 - f32c.t2 / 2.0).abs() < 1e-12);
        // f64 halves the rate instead
        let f64c = OffloadCosts::new_quantized(&spec, 4096, 4096, 512, 8);
        assert!((f64c.t0 - f32c.t0 * 2.0).abs() < 1e-12);
        assert_eq!(spec.srgemm_flops_for(2), 2.0 * spec.srgemm_flops);
        // lane-width scaling preserves the compute-bound threshold shape:
        // both terms scale together, so Eq. 5's k_min is width-invariant
        assert_eq!(f32c.compute_bound(), u16c.compute_bound());
    }

    #[test]
    fn zero_disk_term_reduces_to_the_three_engine_model() {
        let spec = GpuSpec::summit_v100();
        let base = OffloadCosts::new(&spec, 4096, 4096, 512, 4);
        // infinite disk bandwidth ⇒ t3 = 0 ⇒ identical predictions
        let disk = OffloadCosts::with_disk(&spec, 4096, 4096, 512, 4, f64::INFINITY);
        for s in 1..6 {
            assert_eq!(base.predicted_time(s), disk.predicted_time(s), "s={s}");
        }
    }

    #[test]
    fn disk_tier_crossover_behaves_like_eq5() {
        // ~45 Gflop/s packed cores, 2 GB/s disk, f32 ⇒ k_min = 45e9·4/2e9 = 90
        let k_min = min_block_size_disk(45e9, 4, 2e9);
        assert!((k_min - 90.0).abs() < 1e-9, "got {k_min}");
        // a spec whose srgemm rate matches the cores: tiles above k_min are
        // compute-bound w.r.t. the disk term, below are disk-bound
        let host = GpuSpec { srgemm_flops: 45e9, ..GpuSpec::summit_v100() };
        let above = OffloadCosts::with_disk(&host, 8192, 8192, 256, 4, 2e9);
        assert!(above.t0 >= above.t3, "k=256 > k_min must be disk-compute-bound");
        let below = OffloadCosts::with_disk(&host, 8192, 8192, 32, 4, 2e9);
        assert!(below.t0 < below.t3, "k=32 < k_min must be disk-bound");
    }
}
