//! Cost-model planner: score every registered solver on a [`GraphProfile`]
//! and pick the cheapest eligible one, keeping the whole scoring table so
//! the choice is explainable (`apsp plan`).
//!
//! The constants below are single-machine calibration points, not physics:
//! they only need to rank solvers correctly around the density crossover,
//! and the perf suite's `solver/*` entries keep them honest (a mis-ranked
//! family shows up as the planner losing to a forced baseline).
//!
//! Calibrated against release-mode wall times on the dev box (1 worker):
//! packed dense FW sustains ~45 G semiring-flop/s (grid n=1024..4096 and
//! dense n=512 all fit 2.0–2.3e-11 s/flop), a Dijkstra sweep costs
//! ~3 ns/relaxation + ~9 ns/heap op, and a Δ-stepping sweep ~45 ns/edge
//! with no heap term — which is exactly why Δ-stepping overtakes dense FW
//! first on very sparse graphs (ring n=4096: 1.0 s vs 2.8 s measured)
//! while Dijkstra's n²·log n heap bill delays its crossover to n ≳ 4000.

use super::profile::human_bytes;
use super::{Estimate, GraphProfile, Ineligible, Registry, SolveOpts};

/// Seconds per semiring FLOP of the packed register-tiled dense kernel
/// (per worker thread).
pub const T_FLOP_PACKED: f64 = 2.2e-11;
/// Seconds per semiring FLOP of the packed kernel on saturating `u16`
/// lanes: 32 lanes per AVX-512 register vs 16 for `f32` roughly halves the
/// per-flop cost (the perf suite's `gemm/packed/minplus_u16` entry keeps
/// this honest).
pub const T_QUANT_U16: f64 = 1.2e-11;
/// Seconds per semiring FLOP of the packed kernel on saturating `i32`
/// lanes: same lane count as `f32`, slightly behind it — the saturating
/// fma is three integer ops per vector (`vpaddd` + compare + masked
/// `vpminsd`) against `f32`'s two (measured ~0.87× in
/// `gemm/packed/minplus_i32`).
pub const T_QUANT_I32: f64 = 2.5e-11;
/// Seconds per FLOP of the unpacked block-sparse GEMM path (also used to
/// price Seidel's repeated-squaring products).
pub const T_FLOP_BLOCKED: f64 = 8.0e-11;
/// Seconds per FLOP of the sequential triple loop.
pub const T_FLOP_SEQ: f64 = 1.55e-10;
/// Seconds per edge relaxation in the pointer-chasing SSSP algorithms.
pub const T_RELAX: f64 = 3.0e-9;
/// Seconds per binary-heap operation (push/pop amortized).
pub const T_HEAP: f64 = 9.0e-9;
/// Seconds per edge visit of one Δ-stepping sweep (bucket scans and
/// light-edge re-relaxations folded in; grows on wide weight ranges,
/// which only widens dense FW's win there).
pub const T_BUCKET_RELAX: f64 = 4.5e-8;
/// Seconds per byte of tile-store disk traffic in the out-of-core solver
/// (~2 GB/s sustained sequential file I/O; the `t3` engine of
/// `gpu_sim::cost`'s four-term model).
pub const T_DISK: f64 = 5.0e-10;
/// Per-rank overhead of the simulated distributed runtime (thread spawn,
/// mailbox traffic, scheduling) — keeps `dist` estimates honest about the
/// fact that it simulates a cluster rather than using one.
pub const T_SIM_RANK: f64 = 2.0e-3;

/// Dense FW work: `2n³` semiring FLOPs (one ⊕ and one ⊗ per inner step).
pub fn dense_flops(n: usize) -> f64 {
    2.0 * (n as f64).powi(3)
}

/// One SSSP sweep per source: `n · (m·t_relax + n·log₂n·t_heap) / threads`.
pub fn sssp_sweep_seconds(p: &GraphProfile, threads: usize) -> f64 {
    let n = p.n as f64;
    let m = p.m as f64;
    n * (m * T_RELAX + n * n.max(2.0).log2() * T_HEAP) / threads.max(1) as f64
}

/// One Δ-stepping sweep per source: `n · m · t_bucket_relax / threads`.
/// No heap term — that absence is Δ-stepping's whole edge over Dijkstra
/// on very sparse graphs.
pub fn delta_sweep_seconds(p: &GraphProfile, threads: usize) -> f64 {
    let n = p.n as f64;
    let m = p.m as f64;
    n * m * T_BUCKET_RELAX / threads.max(1) as f64
}

/// One solver's row in the plan table.
#[derive(Clone, Debug)]
pub struct PlanEntry {
    /// Canonical solver name.
    pub solver: &'static str,
    /// One-line solver description.
    pub description: &'static str,
    /// The cost forecast, or the typed reason the solver refused.
    pub outcome: Result<Estimate, Ineligible>,
    /// Estimated peak working set in bytes.
    pub working_set: u64,
    /// `Some(reason)` when the solver is never auto-selected.
    pub auto_excluded: Option<&'static str>,
}

/// The planner's full, explainable output: profile, scoring table (eligible
/// rows first, cheapest first), and the chosen solver.
#[derive(Clone, Debug)]
pub struct Plan {
    /// The profile everything was scored against.
    pub profile: GraphProfile,
    /// Worker count the estimates assumed.
    pub threads: usize,
    /// All solvers, sorted: eligible by ascending cost, then ineligible.
    pub entries: Vec<PlanEntry>,
    /// Cheapest eligible, auto-selectable solver (None if nothing is).
    pub chosen: Option<&'static str>,
}

impl Plan {
    /// The entry for `solver`, if registered.
    pub fn entry(&self, solver: &str) -> Option<&PlanEntry> {
        self.entries.iter().find(|e| e.solver == solver)
    }

    /// Human-readable report: profile header, scoring table, choice.
    pub fn render(&self) -> String {
        let mut out = self.profile.render();
        out.push_str(&format!(
            "plan (threads = {}, block = {})\n",
            self.threads, self.profile.block_size
        ));
        for e in &self.entries {
            let marker = if Some(e.solver) == self.chosen { "->" } else { "  " };
            match &e.outcome {
                Ok(est) => {
                    out.push_str(&format!(
                        "{marker} {:<9} est {:>10}  ws {:>9}  {}\n",
                        e.solver,
                        human_seconds(est.seconds),
                        human_bytes(e.working_set),
                        est.detail,
                    ));
                    if let Some(why) = e.auto_excluded {
                        out.push_str(&format!("   {:<9} [never auto-selected: {why}]\n", ""));
                    }
                }
                Err(reason) => {
                    out.push_str(&format!("   {:<9} ineligible: {reason}\n", e.solver));
                }
            }
        }
        match self.chosen {
            Some(name) => {
                let desc = self.entry(name).map(|e| e.description).unwrap_or("");
                out.push_str(&format!("chosen: {name} — {desc}\n"));
            }
            None => out.push_str("chosen: none (no eligible solver)\n"),
        }
        out
    }
}

/// `0.00321 → "3.21 ms"`.
pub fn human_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// Score every solver in `reg` against `profile` and pick the cheapest
/// eligible one that is not excluded from auto-selection.
pub fn plan(reg: &Registry, profile: GraphProfile, opts: &SolveOpts) -> Plan {
    let threads = opts.effective_threads();
    let mut entries: Vec<PlanEntry> = reg
        .solvers()
        .map(|s| PlanEntry {
            solver: s.name(),
            description: s.description(),
            outcome: match s.eligible(&profile, opts) {
                Ok(()) => Ok(s.estimate(&profile, opts)),
                Err(reason) => Err(reason),
            },
            working_set: s.working_set_bytes(&profile, opts),
            auto_excluded: s.auto_excluded(),
        })
        .collect();
    entries.sort_by(|a, b| match (&a.outcome, &b.outcome) {
        (Ok(x), Ok(y)) => x.seconds.total_cmp(&y.seconds),
        (Ok(_), Err(_)) => std::cmp::Ordering::Less,
        (Err(_), Ok(_)) => std::cmp::Ordering::Greater,
        (Err(_), Err(_)) => std::cmp::Ordering::Equal,
    });
    let chosen = entries
        .iter()
        .find(|e| e.outcome.is_ok() && e.auto_excluded.is_none())
        .map(|e| e.solver);
    Plan { profile, threads, entries, chosen }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_seconds_units() {
        assert_eq!(human_seconds(2.5), "2.50 s");
        assert_eq!(human_seconds(0.0032), "3.20 ms");
        assert_eq!(human_seconds(4.2e-5), "42.0 µs");
    }

    #[test]
    fn sweep_cost_scales_with_edges_and_threads() {
        let mk = |n: usize, m: usize| GraphProfile {
            n,
            m,
            density: 0.0,
            min_weight: 1.0,
            max_weight: 1.0,
            mean_weight: 1.0,
            negative_edges: 0,
            unit_weights: true,
            integral_weights: true,
            symmetric: true,
            weak_components: 1,
            block_size: 64,
            nnz_blocks: 1,
            block_density: 1.0,
            dense_bytes: (n * n * 4) as u64,
        };
        let sparse = mk(1000, 4000);
        let dense = mk(1000, 999_000);
        assert!(sssp_sweep_seconds(&sparse, 1) < sssp_sweep_seconds(&dense, 1));
        assert!(sssp_sweep_seconds(&sparse, 8) < sssp_sweep_seconds(&sparse, 1));
        // threads=0 must not divide by zero
        assert!(sssp_sweep_seconds(&sparse, 0).is_finite());
    }
}
