//! Compact weighted digraph in CSR form, plus dense-matrix conversions.

use srgemm::Matrix;

/// "No edge" marker, also the tropical additive identity.
pub const INF: f32 = f32::INFINITY;

/// Immutable weighted digraph stored in compressed-sparse-row form.
///
/// Vertices are `0..n`. Parallel edges are allowed at build time; CSR keeps
/// the minimum weight per (src, dst) pair, which is the semantics the dense
/// distance-matrix form imposes anyway.
#[derive(Clone, Debug)]
pub struct Graph {
    n: usize,
    offsets: Vec<usize>,
    targets: Vec<u32>,
    weights: Vec<f32>,
}

impl Graph {
    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of (deduplicated) directed edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.targets.len()
    }

    /// Out-neighborhood of `u` as parallel slices `(targets, weights)`.
    #[inline]
    pub fn out_edges(&self, u: usize) -> (&[u32], &[f32]) {
        let lo = self.offsets[u];
        let hi = self.offsets[u + 1];
        (&self.targets[lo..hi], &self.weights[lo..hi])
    }

    /// Weight of edge `(u, v)` or [`INF`] if absent.
    pub fn weight(&self, u: usize, v: usize) -> f32 {
        let (ts, ws) = self.out_edges(u);
        match ts.binary_search(&(v as u32)) {
            Ok(i) => ws[i],
            Err(_) => INF,
        }
    }

    /// Iterate all edges as `(src, dst, w)`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        (0..self.n).flat_map(move |u| {
            let (ts, ws) = self.out_edges(u);
            ts.iter().zip(ws).map(move |(&t, &w)| (u, t as usize, w))
        })
    }

    /// Dense distance-matrix form used by the Floyd-Warshall kernels:
    /// `D[i][j] = w(i,j)`, `D[i][i] = min(0, w(i,i))`, `∞` elsewhere.
    pub fn to_dense(&self) -> Matrix<f32> {
        let mut d = Matrix::filled(self.n, self.n, INF);
        for i in 0..self.n {
            d[(i, i)] = 0.0;
        }
        for (u, v, w) in self.edges() {
            if w < d[(u, v)] {
                d[(u, v)] = w;
            }
        }
        d
    }

    /// Block-sparse distance-matrix form for the block-sparse
    /// Floyd-Warshall solver: only blocks holding an edge (plus every
    /// diagonal block, seeded `D[i][i] = min(0, w(i,i))`) are materialized.
    /// Equivalent to [`Graph::to_dense`] followed by
    /// `BlockSparseMatrix::from_dense`, without the `O(n²)` dense detour —
    /// and the diagonal seeding callers used to hand-roll happens here.
    pub fn to_block_sparse(&self, b: usize) -> srgemm::block_sparse::BlockSparseMatrix<f32> {
        srgemm::block_sparse::BlockSparseMatrix::from_entries(self.n, b, INF, 0.0, self.edges())
    }

    /// Rebuild a graph from a dense matrix (entries `< ∞`, off-diagonal,
    /// become edges). Inverse of [`Graph::to_dense`] up to implied zero
    /// diagonals.
    pub fn from_dense(d: &Matrix<f32>) -> Graph {
        assert_eq!(d.rows(), d.cols(), "distance matrix must be square");
        let n = d.rows();
        let mut b = GraphBuilder::new(n);
        for i in 0..n {
            for j in 0..n {
                let w = d[(i, j)];
                if i != j && w < INF {
                    b.add_edge(i, j, w);
                }
            }
        }
        b.build()
    }

    /// Total weight stored (used in sanity tests).
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().map(|&w| w as f64).sum()
    }
}

/// Mutable edge-list accumulator; [`GraphBuilder::build`] produces the CSR.
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(u32, u32, f32)>,
}

impl GraphBuilder {
    /// A builder for a graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Self { n, edges: Vec::new() }
    }

    /// Add directed edge `u → v` of weight `w`.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints or NaN weight.
    pub fn add_edge(&mut self, u: usize, v: usize, w: f32) -> &mut Self {
        assert!(u < self.n && v < self.n, "edge endpoint out of range");
        assert!(!w.is_nan(), "edge weight must not be NaN");
        self.edges.push((u as u32, v as u32, w));
        self
    }

    /// Add both `u → v` and `v → u` with weight `w`.
    pub fn add_undirected(&mut self, u: usize, v: usize, w: f32) -> &mut Self {
        self.add_edge(u, v, w);
        self.add_edge(v, u, w)
    }

    /// Number of raw (pre-dedup) edges added so far.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if no edges were added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Finalize into CSR. Duplicate `(u, v)` pairs keep the minimum weight.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable_by_key(|a| (a.0, a.1));
        self.edges.dedup_by(|next, kept| {
            if next.0 == kept.0 && next.1 == kept.1 {
                if next.2 < kept.2 {
                    kept.2 = next.2;
                }
                true
            } else {
                false
            }
        });
        let mut offsets = vec![0usize; self.n + 1];
        for &(u, _, _) in &self.edges {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..self.n {
            offsets[i + 1] += offsets[i];
        }
        let targets = self.edges.iter().map(|e| e.1).collect();
        let weights = self.edges.iter().map(|e| e.2).collect();
        Graph {
            n: self.n,
            offsets,
            targets,
            weights,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trip() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 2.0).add_edge(1, 2, 3.0).add_edge(0, 3, 1.0);
        let g = b.build();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 3);
        assert_eq!(g.weight(0, 1), 2.0);
        assert_eq!(g.weight(1, 0), INF);
        let (ts, _) = g.out_edges(0);
        assert_eq!(ts, &[1, 3]);
    }

    #[test]
    fn duplicate_edges_keep_minimum() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 5.0).add_edge(0, 1, 2.0).add_edge(0, 1, 9.0);
        let g = b.build();
        assert_eq!(g.m(), 1);
        assert_eq!(g.weight(0, 1), 2.0);
    }

    #[test]
    fn dense_round_trip() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.5).add_edge(2, 0, 2.5).add_undirected(1, 2, 0.5);
        let g = b.build();
        let d = g.to_dense();
        assert_eq!(d[(0, 0)], 0.0);
        assert_eq!(d[(0, 1)], 1.5);
        assert_eq!(d[(1, 0)], INF);
        let g2 = Graph::from_dense(&d);
        assert_eq!(g2.m(), g.m());
        assert_eq!(g2.weight(2, 1), 0.5);
    }

    #[test]
    fn isolated_vertices_have_empty_neighborhoods() {
        let g = GraphBuilder::new(5).build();
        assert_eq!(g.m(), 0);
        for u in 0..5 {
            assert!(g.out_edges(u).0.is_empty());
        }
    }

    #[test]
    fn self_loop_in_dense_takes_min_with_zero() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 0, 5.0); // positive self-loop never beats staying put
        b.add_edge(1, 1, -1.0); // negative self-loop would (kept by min)
        let g = b.build();
        let d = g.to_dense();
        assert_eq!(d[(0, 0)], 0.0);
        assert_eq!(d[(1, 1)], -1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_endpoint() {
        GraphBuilder::new(2).add_edge(0, 2, 1.0);
    }

    #[test]
    fn block_sparse_form_matches_dense_form() {
        let mut b = GraphBuilder::new(7);
        b.add_edge(0, 6, 4.0).add_edge(6, 1, 2.0).add_undirected(2, 3, 0.5);
        b.add_edge(4, 4, -1.0); // negative self-loop survives the min
        let g = b.build();
        let sp = g.to_block_sparse(3);
        assert!(sp.to_dense().eq_exact(&g.to_dense()));
        // diagonal blocks always materialize; off-diagonal only where edges live
        assert!(sp.nnz_blocks() >= 3);
        assert_eq!(sp.get(4, 4), -1.0);
        assert_eq!(sp.get(5, 0), INF);
    }
}
