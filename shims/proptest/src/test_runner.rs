//! Runner plumbing: per-test configuration, case errors, and the
//! deterministic sampling RNG.

use rand::prelude::*;

/// Per-`proptest!` block configuration (`ProptestConfig` in the prelude).
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Why a single sampled case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — redraw, do not count as a failure.
    Reject,
    /// `prop_assert!`-family failure with its rendered message.
    Fail(String),
}

/// Sampling seed: fixed for reproducible CI, overridable via
/// `PROPTEST_SHIM_SEED` to replay a reported failure or widen exploration.
pub fn env_seed() -> u64 {
    std::env::var("PROPTEST_SHIM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_CA5E_0001)
}

/// The RNG strategies draw from.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { inner: StdRng::seed_from_u64(seed) }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform double in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, n)`; `n` must be nonzero.
    pub fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}
