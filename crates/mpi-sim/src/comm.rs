//! Communicators: p2p endpoints plus MPI-style `split`.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::counters::Counters;
use crate::error::{CommError, DeadlockReport};
use crate::exec::{Scheduler, Wake};
use crate::fault::{FaultState, SendFate};
use crate::p2p::{Mailbox, Polled};
use crate::payload::Payload;
use crate::placement::Placement;
use crate::trace::{self, MsgEvent, Span, TraceState};

/// Tags with the top bit set are reserved for collectives.
pub(crate) const INTERNAL_TAG: u64 = 1 << 63;

/// State shared by all ranks of a runtime.
pub(crate) struct Shared {
    pub(crate) mailboxes: Vec<Mailbox>,
    pub(crate) counters: Counters,
    pub(crate) placement: Placement,
    pub(crate) recv_timeout: Duration,
    pub(crate) trace: Option<Arc<TraceState>>,
    pub(crate) faults: Option<FaultState>,
    /// The cooperative rank scheduler: parks blocked tasks, multiplexes the
    /// worker slots, owns the deadline wheel (see [`crate::exec`]).
    pub(crate) sched: Scheduler,
    splits: Mutex<SplitState>,
    ctx_alloc: Mutex<CtxAlloc>,
}

#[derive(Default)]
struct CtxAlloc {
    next: u64,
    by_origin: HashMap<(u64, u64, u64), u64>,
}

#[derive(Default)]
struct SplitState {
    slots: HashMap<(u64, u64), SplitSlot>,
    /// World rank of the first failed rank, once the runtime poisons us —
    /// observed by ranks blocked waiting for peers to reach a `split`.
    poisoned: Option<usize>,
}

#[derive(Default)]
struct SplitSlot {
    /// (color, key, world rank, rank in parent)
    entries: Vec<(u64, u64, usize, usize)>,
}

impl Shared {
    pub(crate) fn new(
        p: usize,
        workers: usize,
        placement: Placement,
        recv_timeout: Duration,
        trace: Option<Arc<TraceState>>,
        faults: Option<FaultState>,
    ) -> Self {
        assert_eq!(placement.num_ranks(), p, "placement covers a different rank count");
        Shared {
            mailboxes: (0..p).map(|_| Mailbox::new()).collect(),
            counters: Counters::new(placement.num_nodes()),
            placement,
            recv_timeout,
            trace,
            faults,
            sched: Scheduler::new(p, workers),
            splits: Mutex::new(SplitState::default()),
            ctx_alloc: Mutex::new(CtxAlloc { next: 1, by_origin: HashMap::new() }),
        }
    }

    /// Deterministic context id for the sub-communicator born from
    /// `(parent ctx, split op, color)` — every member resolves to the same id.
    fn ctx_for(&self, parent: u64, op: u64, color: u64) -> u64 {
        let mut alloc = self.ctx_alloc.lock();
        if let Some(&id) = alloc.by_origin.get(&(parent, op, color)) {
            return id;
        }
        let id = alloc.next;
        alloc.next += 1;
        alloc.by_origin.insert((parent, op, color), id);
        id
    }

    /// Fail-fast fan-out after world rank `rank` failed: poison every
    /// mailbox and the split table, then wake every parked task so blocked
    /// ranks observe [`CommError::PeerFailed`] immediately instead of
    /// burning the full receive timeout. The first failure wins attribution.
    pub(crate) fn poison(&self, rank: usize) {
        for mb in &self.mailboxes {
            mb.poison(rank);
        }
        let mut splits = self.splits.lock();
        if splits.poisoned.is_none() {
            splits.poisoned = Some(rank);
        }
        drop(splits);
        self.sched.wake_all();
    }
}

/// A communicator handle owned by one rank's task.
///
/// `rank`/`size` are relative to this communicator; `members` maps
/// communicator ranks to world ranks. All collectives and `split` must be
/// called by every member in the same order (standard MPI contract).
pub struct Comm {
    pub(crate) ctx: u64,
    rank: usize,
    members: Arc<Vec<usize>>,
    pub(crate) shared: Arc<Shared>,
    op_seq: Cell<u64>,
}

impl Comm {
    pub(crate) fn world(shared: Arc<Shared>, world_rank: usize) -> Self {
        let p = shared.mailboxes.len();
        Comm {
            ctx: 0,
            rank: world_rank,
            members: Arc::new((0..p).collect()),
            shared,
            op_seq: Cell::new(0),
        }
    }

    /// This rank's id within the communicator.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// World rank of communicator member `r`.
    #[inline]
    pub fn world_rank_of(&self, r: usize) -> usize {
        self.members[r]
    }

    /// Node hosting communicator member `r` (per the runtime's placement).
    pub fn node_of(&self, r: usize) -> usize {
        self.shared.placement.node_of(self.members[r])
    }

    /// Reserve the next collective-operation sequence number.
    pub(crate) fn next_op(&self) -> u64 {
        let op = self.op_seq.get();
        self.op_seq.set(op + 1);
        op
    }

    /// Buffered (non-blocking) tagged send to communicator rank `dst`.
    ///
    /// Fails only under fault injection ([`CommError::Killed`] when the
    /// plan kills this rank at this send).
    ///
    /// # Panics
    /// Panics if `tag` uses the reserved top bit or `dst` is out of range.
    pub fn send<T: Payload>(&self, dst: usize, tag: u64, msg: T) -> Result<(), CommError> {
        assert!(tag & INTERNAL_TAG == 0, "user tags must not set the top bit");
        self.send_raw(dst, tag, msg)
    }

    pub(crate) fn send_raw<T: Payload>(
        &self,
        dst: usize,
        tag: u64,
        msg: T,
    ) -> Result<(), CommError> {
        let src_world = self.members[self.rank];
        let dst_world = self.members[dst];
        let fate = match &self.shared.faults {
            Some(fs) => fs.decide(src_world, self.ctx, tag),
            None => SendFate::Deliver,
        };
        if fate == SendFate::Kill {
            return Err(CommError::Killed { rank: src_world });
        }
        // Dropped and delayed messages still left this rank: charge them to
        // the traffic counters and the trace like any other send.
        let bytes = msg.size_bytes();
        let phase = trace::current_phase();
        let nic = self
            .shared
            .counters
            .record(&self.shared.placement, src_world, dst_world, bytes, phase);
        if let Some(tr) = &self.shared.trace {
            tr.record_msg(
                src_world,
                MsgEvent { ts_us: tr.now_us(), dst_world, bytes, nic, phase },
            );
        }
        let key = (self.ctx, self.rank, tag);
        match fate {
            SendFate::Deliver => {
                self.shared.mailboxes[dst_world].deliver(key, Box::new(msg));
                self.shared.sched.wake(dst_world);
            }
            SendFate::Drop => {}
            SendFate::Delay(by) => {
                // delayed delivery rides the scheduler's deadline wheel and
                // is executed by the runtime-scoped timekeeper — no helper
                // thread that could outlive the runtime or dodge poisoning
                self.shared.sched.schedule_delivery(
                    Instant::now() + by,
                    dst_world,
                    key,
                    Box::new(msg),
                );
            }
            SendFate::Kill => unreachable!("kill returns above"),
        }
        Ok(())
    }

    /// Blocking tagged receive from communicator rank `src`.
    ///
    /// Blocking means *parking*: a pending receive releases this rank's
    /// worker slot to another runnable rank and is re-enqueued by message
    /// delivery, poisoning, or its deadline on the scheduler wheel.
    ///
    /// Fails with [`CommError::RecvTimeout`] (structured deadlock report)
    /// when the message never arrives, [`CommError::PeerFailed`] when the
    /// runtime poisons the mailboxes after another rank fails, or
    /// [`CommError::PayloadTypeMismatch`] on a mismatched send/recv pair.
    pub fn recv<T: Payload>(&self, src: usize, tag: u64) -> Result<T, CommError> {
        assert!(tag & INTERNAL_TAG == 0, "user tags must not set the top bit");
        self.recv_raw(src, tag)
    }

    pub(crate) fn recv_raw<T: Payload>(&self, src: usize, tag: u64) -> Result<T, CommError> {
        let my_world = self.members[self.rank];
        let mb = &self.shared.mailboxes[my_world];
        let key = (self.ctx, src, tag);
        let deadline = Instant::now() + self.shared.recv_timeout;
        let mut timed_out = false;
        loop {
            match mb.poll::<T>(key) {
                Polled::Ready(value) => return Ok(value),
                Polled::Poisoned { rank } => return Err(CommError::PeerFailed { rank }),
                Polled::TypeMismatch { expected } => {
                    return Err(CommError::PayloadTypeMismatch {
                        ctx: self.ctx,
                        src,
                        tag: tag & !INTERNAL_TAG,
                        expected,
                    })
                }
                Polled::Pending => {}
            }
            if timed_out {
                // final poll above already ran (a delivery can race the
                // deadline); nothing matched, so report the deadlock
                return Err(CommError::RecvTimeout(Box::new(DeadlockReport {
                    timeout: self.shared.recv_timeout,
                    rank: self.rank,
                    world_rank: my_world,
                    src,
                    src_world: self.members.get(src).copied().unwrap_or(usize::MAX),
                    ctx: self.ctx,
                    tag: tag & !INTERNAL_TAG,
                    phase: trace::current_phase(),
                    pending: mb.pending_keys(),
                })));
            }
            timed_out = self.shared.sched.park(my_world, Some(deadline)) == Wake::TimedOut;
        }
    }

    /// Combined buffered send + blocking receive — the safe way to do a
    /// pairwise exchange. Because sends are buffered, two ranks calling
    /// `sendrecv` at each other cannot deadlock, and both halves run on this
    /// rank's own scheduled task: a panic anywhere in the exchange is caught
    /// by the runtime and surfaces as a typed `RankFailure` (earlier
    /// revisions used raw helper threads here, which escaped the runtime's
    /// failure accounting entirely).
    pub fn sendrecv<S: Payload, R: Payload>(
        &self,
        dst: usize,
        send_tag: u64,
        msg: S,
        src: usize,
        recv_tag: u64,
    ) -> Result<R, CommError> {
        assert!(
            send_tag & INTERNAL_TAG == 0 && recv_tag & INTERNAL_TAG == 0,
            "user tags must not set the top bit"
        );
        self.send_raw(dst, send_tag, msg)?;
        self.recv_raw(src, recv_tag)
    }

    /// Open a named trace phase on this rank; the returned guard closes it.
    ///
    /// While the guard lives, every byte this rank sends is attributed to
    /// `name` in the run's [`crate::TrafficReport::per_phase`], and — when
    /// the runtime was started via [`crate::Runtime::run_with_trace`] — a
    /// [`Span`] is recorded on this rank's timeline at guard drop. Guards
    /// nest (innermost wins for attribution), matching the look-ahead
    /// structure of the pipelined FW variants.
    #[must_use = "the phase closes when the guard drops"]
    pub fn phase(&self, name: &'static str) -> PhaseGuard {
        trace::push_phase(name);
        let trace = self.shared.trace.clone();
        let start_us = trace.as_deref().map_or(0, TraceState::now_us);
        PhaseGuard { trace, world_rank: self.members[self.rank], name, start_us }
    }

    /// Non-blocking probe for a pending message.
    pub fn probe(&self, src: usize, tag: u64) -> bool {
        let my_world = self.members[self.rank];
        self.shared.mailboxes[my_world].probe((self.ctx, src, tag))
    }

    /// Cooperatively hand this rank's worker slot to the next runnable rank,
    /// if any is waiting. Call this inside [`Comm::probe`] polling loops so
    /// they make progress even when the worker pool is smaller than the
    /// rank count; a no-op when no other rank is waiting for a slot.
    pub fn yield_now(&self) {
        self.shared.sched.yield_now(self.members[self.rank]);
    }

    /// Collective: partition members by `color`; within a color, ranks are
    /// ordered by `(key, parent rank)`. Returns this rank's sub-communicator.
    ///
    /// Fails with [`CommError::SplitTimeout`] when not every member reaches
    /// the call before the receive timeout, or [`CommError::PeerFailed`]
    /// when another rank fails while this one waits.
    pub fn split(&self, color: u64, key: u64) -> Result<Comm, CommError> {
        let op = self.next_op();
        let slot_key = (self.ctx, op);
        let world = self.members[self.rank];
        let parent_size = self.size();
        let deadline = Instant::now() + self.shared.recv_timeout;
        let complete = {
            let mut splits = self.shared.splits.lock();
            if let Some(rank) = splits.poisoned {
                return Err(CommError::PeerFailed { rank });
            }
            let slot = splits.slots.entry(slot_key).or_default();
            slot.entries.push((color, key, world, self.rank));
            slot.entries.len() == parent_size
        };
        if complete {
            // last arriver: every other member has already registered, so
            // wake them all (parked members re-poll; members still running
            // absorb the wake via their notified flag)
            for &m in self.members.iter() {
                if m != world {
                    self.shared.sched.wake(m);
                }
            }
        } else {
            let mut timed_out = false;
            loop {
                let splits = self.shared.splits.lock();
                if splits.slots.get(&slot_key).map(|s| s.entries.len()) == Some(parent_size) {
                    break;
                }
                if let Some(rank) = splits.poisoned {
                    return Err(CommError::PeerFailed { rank });
                }
                if timed_out {
                    let arrived = splits.slots.get(&slot_key).map_or(0, |s| s.entries.len());
                    return Err(CommError::SplitTimeout {
                        ctx: self.ctx,
                        op,
                        arrived,
                        expected: parent_size,
                    });
                }
                drop(splits);
                timed_out = self.shared.sched.park(world, Some(deadline)) == Wake::TimedOut;
            }
        }
        // read phase: slot complete; compute my sub-communicator
        let splits = self.shared.splits.lock();
        let slot = &splits.slots[&slot_key];
        let mut mine: Vec<(u64, usize, usize)> = slot
            .entries
            .iter()
            .filter(|e| e.0 == color)
            .map(|&(_, k, w, pr)| (k, pr, w))
            .collect();
        drop(splits);
        mine.sort_unstable();
        let members: Vec<usize> = mine.iter().map(|&(_, _, w)| w).collect();
        let my_rank = members.iter().position(|&w| w == world).expect("self in split");
        Ok(Comm {
            ctx: self.shared.ctx_for(self.ctx, op, color),
            rank: my_rank,
            members: Arc::new(members),
            shared: self.shared.clone(),
            op_seq: Cell::new(0),
        })
    }
}

/// RAII guard for an open trace phase (see [`Comm::phase`]).
pub struct PhaseGuard {
    trace: Option<Arc<TraceState>>,
    world_rank: usize,
    name: &'static str,
    start_us: u64,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        trace::pop_phase();
        if let Some(tr) = &self.trace {
            let span = Span { name: self.name, start_us: self.start_us, end_us: tr.now_us() };
            tr.record_span(self.world_rank, span);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::error::CommError;
    use crate::runtime::{FailureKind, Runtime};
    use std::time::Duration;

    #[test]
    fn send_recv_between_ranks() {
        let out = Runtime::new(2).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 5, vec![1.0f32, 2.0]).unwrap();
                0.0
            } else {
                let v: Vec<f32> = comm.recv(0, 5).unwrap();
                v.iter().sum::<f32>()
            }
        });
        assert_eq!(out[1], 3.0);
    }

    #[test]
    fn tags_demultiplex_out_of_order_sends() {
        let out = Runtime::new(2).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, 10u64).unwrap();
                comm.send(1, 2, 20u64).unwrap();
                0
            } else {
                // receive in the opposite order of sending
                let b: u64 = comm.recv(0, 2).unwrap();
                let a: u64 = comm.recv(0, 1).unwrap();
                a * 100 + b
            }
        });
        assert_eq!(out[1], 1020);
    }

    #[test]
    fn sendrecv_pairwise_exchange_cannot_deadlock() {
        // every rank sendrecvs with its ring neighbours simultaneously —
        // the classic pattern that deadlocks with unbuffered sends
        let p = 6;
        let out = Runtime::new(p).run(move |comm| {
            let right = (comm.rank() + 1) % p;
            let left = (comm.rank() + p - 1) % p;
            let got: u64 = comm.sendrecv(right, 7, comm.rank() as u64, left, 7).unwrap();
            got
        });
        for (r, &got) in out.iter().enumerate() {
            assert_eq!(got as usize, (r + p - 1) % p, "rank {r} got its left neighbour's value");
        }
    }

    #[test]
    fn yield_now_lets_probe_loops_progress_on_a_tiny_pool() {
        // rank 1 spins on probe() while rank 0 still needs a worker slot to
        // send — with a 1-slot pool this only terminates because the probe
        // loop yields its slot cooperatively
        let out = Runtime::new(2).with_workers(1).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 9, 41u64).unwrap();
                0
            } else {
                while !comm.probe(0, 9) {
                    comm.yield_now();
                }
                comm.recv::<u64>(0, 9).unwrap() + 1
            }
        });
        assert_eq!(out[1], 42);
    }

    #[test]
    fn split_builds_row_communicators() {
        // 6 ranks → 2 colors of 3; rank order inside = key order
        let out = Runtime::new(6).run(|comm| {
            let color = (comm.rank() / 3) as u64;
            let key = (comm.rank() % 3) as u64;
            let sub = comm.split(color, key).unwrap();
            // ring of partial sums inside the sub-communicator
            (sub.size(), sub.rank(), sub.world_rank_of(0))
        });
        assert_eq!(out[0], (3, 0, 0));
        assert_eq!(out[4], (3, 1, 3));
        assert_eq!(out[5], (3, 2, 3));
    }

    #[test]
    fn split_subcomm_messages_do_not_leak_across_colors() {
        let out = Runtime::new(4).run(|comm| {
            let color = (comm.rank() % 2) as u64;
            let sub = comm.split(color, comm.rank() as u64).unwrap();
            if sub.rank() == 0 {
                comm.barrier().unwrap(); // let both sends happen before receives
                sub.send(1, 3, (color + 1) * 111).unwrap();
                comm.barrier().unwrap();
                0
            } else {
                comm.barrier().unwrap();
                comm.barrier().unwrap();
                sub.recv::<u64>(0, 3).unwrap()
            }
        });
        // ranks 2 and 3 are rank 1 of their color's subcomm
        assert_eq!(out[2], 111); // color 0
        assert_eq!(out[3], 222); // color 1
    }

    #[test]
    #[should_panic]
    fn user_tag_top_bit_rejected() {
        Runtime::new(1).run(|comm| comm.send(0, 1 << 63, 0u8));
    }

    #[test]
    fn phase_guards_attribute_traffic() {
        let (_, report) = Runtime::new(2).run_traced(|comm| {
            if comm.rank() == 0 {
                {
                    let _p = comm.phase("PanelBcast");
                    comm.send(1, 1, vec![0u8; 256]).unwrap();
                }
                let _: Vec<u8> = comm.recv(1, 2).unwrap();
            } else {
                let _: Vec<u8> = comm.recv(0, 1).unwrap();
                comm.send(0, 2, vec![0u8; 16]).unwrap(); // outside any phase
            }
        });
        assert_eq!(report.phase_nic_bytes("PanelBcast"), 256);
        assert_eq!(report.per_phase[crate::trace::UNTRACED].nic_bytes, 16);
        assert_eq!(report.phase_nic_bytes_sum(), report.total_nic_bytes());
    }

    #[test]
    fn deadlock_report_names_rank_peer_tag_and_phase() {
        // rank 1 blocks on a message rank 0 never sends; the typed error
        // must name the blocked rank, the peer, the tag and the phase that
        // was open at the time — as a value, not a panic.
        let rt = Runtime::new(2).with_recv_timeout(Duration::from_millis(30));
        let err = rt
            .try_run(|comm| -> Result<(), CommError> {
                if comm.rank() == 1 {
                    let _p = comm.phase("OuterUpdate");
                    let _: u64 = comm.recv(0, 42)?;
                }
                Ok(())
            })
            .expect_err("the deadlocked run must fail");
        let first = err.first();
        assert_eq!(first.rank, 1);
        let FailureKind::App(CommError::RecvTimeout(report)) = &first.error else {
            panic!("expected a recv timeout, got {:?}", first.error)
        };
        assert_eq!(report.timeout, Duration::from_millis(30));
        assert_eq!((report.rank, report.world_rank), (1, 1));
        assert_eq!((report.src, report.src_world), (0, 0));
        assert_eq!(report.tag, 42);
        assert_eq!(report.phase, Some("OuterUpdate"));
        let msg = format!("{err}");
        assert!(msg.contains("recv timed out after 30ms"), "{msg}");
        assert!(msg.contains("during phase OuterUpdate"), "{msg}");
        assert!(msg.contains("distributed deadlock"), "{msg}");
    }

    #[test]
    fn split_timeout_is_a_typed_error() {
        // rank 0 never calls split, so rank 1's split cannot complete.
        let rt = Runtime::new(2).with_recv_timeout(Duration::from_millis(30));
        let err = rt
            .try_run(|comm| -> Result<(), CommError> {
                if comm.rank() == 1 {
                    let _sub = comm.split(0, 0)?;
                }
                Ok(())
            })
            .expect_err("the split must time out");
        let first = err.first();
        let FailureKind::App(CommError::SplitTimeout { arrived, expected, .. }) = &first.error
        else {
            panic!("expected a split timeout, got {:?}", first.error)
        };
        assert_eq!((*arrived, *expected), (1, 2));
        assert!(format!("{err}").contains("split timed out"), "{err}");
    }

    #[test]
    fn type_mismatch_surfaces_as_typed_error() {
        let err = Runtime::new(2)
            .try_run(|comm| -> Result<(), CommError> {
                if comm.rank() == 0 {
                    comm.send(1, 3, 1u32)?;
                } else {
                    let _: f64 = comm.recv(0, 3)?;
                }
                Ok(())
            })
            .expect_err("mismatched send/recv pair");
        let FailureKind::App(CommError::PayloadTypeMismatch { tag, expected, .. }) =
            &err.first().error
        else {
            panic!("expected a type mismatch, got {:?}", err.first().error)
        };
        assert_eq!(*tag, 3);
        assert_eq!(*expected, "f64");
    }
}
