//! Cross-equivalence of the SSSP/APSP oracles on random graphs: four
//! independent algorithms must agree exactly on integer-weighted inputs.

use proptest::prelude::*;

use apsp_graph::bellman_ford::{bellman_ford, BellmanFord};
use apsp_graph::delta_stepping::delta_stepping;
use apsp_graph::dijkstra::dijkstra;
use apsp_graph::generators::{erdos_renyi, WeightKind};
use apsp_graph::graph::{GraphBuilder, INF};
use apsp_graph::johnson::johnson_apsp;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn four_sssp_algorithms_agree(
        n in 2usize..40,
        p in 0.05f64..0.6,
        seed in any::<u64>(),
        delta_exp in 0u32..8,
    ) {
        let g = erdos_renyi(n, p, WeightKind::small_ints(), seed);
        let src = (seed as usize) % n;
        let want = dijkstra(&g, src);
        match bellman_ford(&g, src) {
            BellmanFord::Distances(bf) => prop_assert_eq!(&bf, &want),
            BellmanFord::NegativeCycle => prop_assert!(false, "non-negative graph"),
        }
        let ds = delta_stepping(&g, src, (1 << delta_exp) as f32);
        prop_assert_eq!(&ds, &want);
        let j = johnson_apsp(&g).expect("no negative cycles");
        prop_assert_eq!(j.row(src), &want[..]);
    }

    #[test]
    fn johnson_handles_random_negative_dags(n in 2usize..25, seed in any::<u64>()) {
        // edges only forward (i < j) with weights in [-10, 90]: a DAG, so no
        // cycles at all, negative edges allowed
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state
        };
        let mut b = GraphBuilder::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                if next() % 3 == 0 {
                    b.add_edge(i, j, ((next() % 100) as f32) - 10.0);
                }
            }
        }
        let g = b.build();
        let apsp = johnson_apsp(&g).expect("DAG has no cycles");
        // validate every row against Bellman-Ford (which tolerates negatives)
        for s in 0..n {
            match bellman_ford(&g, s) {
                BellmanFord::Distances(bf) => {
                    for t in 0..n {
                        let (a, b_) = (apsp[(s, t)], bf[t]);
                        if a == INF || b_ == INF {
                            prop_assert_eq!(a, b_);
                        } else {
                            prop_assert!((a - b_).abs() < 1e-3, "({s},{t}): {a} vs {b_}");
                        }
                    }
                }
                BellmanFord::NegativeCycle => prop_assert!(false, "DAG cannot have cycles"),
            }
        }
    }

    #[test]
    fn parallel_johnson_is_bit_identical_to_serial(
        n in 2usize..40,
        p in 0.05f64..0.6,
        seed in any::<u64>(),
        threads in 1usize..9,
    ) {
        // real (non-integer) weights on purpose: bit-identity must come from
        // running the same float ops in the same order per source, not from
        // integer exactness
        let g = erdos_renyi(n, p, WeightKind::Real { lo: 0.1, hi: 10.0 }, seed);
        let serial = johnson_apsp(&g).expect("non-negative");
        let parallel = apsp_graph::johnson::johnson_apsp_threads(&g, threads)
            .expect("non-negative");
        prop_assert!(serial.eq_exact(&parallel), "threads={}", threads);
    }

    #[test]
    fn distances_satisfy_triangle_inequality(n in 2usize..30, p in 0.1f64..0.7, seed in any::<u64>()) {
        let g = erdos_renyi(n, p, WeightKind::small_ints(), seed);
        let apsp = johnson_apsp(&g).expect("non-negative");
        for i in 0..n {
            prop_assert_eq!(apsp[(i, i)], 0.0);
            for j in 0..n {
                for k in 0..n {
                    prop_assert!(apsp[(i, j)] <= apsp[(i, k)] + apsp[(k, j)] + 1e-3);
                }
            }
        }
    }
}
