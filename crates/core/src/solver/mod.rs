//! Unified solver layer: every APSP algorithm in the workspace behind one
//! trait, one registry, and one planner.
//!
//! The paper's pipeline is a single dense engine; real workloads are not
//! uniformly dense. This module gives each algorithm — dense packed FW,
//! blocked/divide-and-conquer FW, block-sparse FW, Johnson, per-source
//! Dijkstra and Δ-stepping sweeps, Seidel, and the simulated distributed
//! driver — a common [`Solver`] surface: a typed eligibility `check`
//! ([`Ineligible`]), a cost `estimate` fed by a one-pass [`GraphProfile`],
//! and a `solve` returning a [`Solution`] with per-solver stats. The
//! [`planner`] scores every registered solver and returns an explainable
//! [`Plan`] (`apsp plan`, `--algo auto`). See DESIGN.md §13.

pub mod adapters;
pub mod planner;
pub mod profile;

use std::time::Instant;

use apsp_graph::Graph;
use srgemm::Matrix;

use crate::dist::{DistError, DistRunOpts, FwConfig, Variant};

pub use planner::{Plan, PlanEntry};
pub use profile::GraphProfile;

/// Shared knobs every solver draws from. One `SolveOpts` is built per CLI
/// invocation (or per test) and handed unchanged to profile, planner, and
/// solver, so all three agree on block size and thread budget.
#[derive(Clone, Debug)]
pub struct SolveOpts {
    /// Block size for the tiled solvers (blocked/dc/sparse/dist).
    pub block: usize,
    /// Worker cap for parallel solvers; `0` → all cores (the
    /// `budget_threads` convention from DESIGN.md §10).
    pub threads: usize,
    /// Optional working-set ceiling in bytes; solvers whose estimated
    /// working set exceeds it become [`Ineligible::MemoryBudget`].
    pub memory_budget: Option<u64>,
    /// `(pr, pc)` process grid for the distributed solver.
    pub grid: (usize, usize),
    /// Policy axes for the distributed solver (its `block` field is
    /// overridden by [`SolveOpts::block`] at solve time).
    pub dist: FwConfig,
    /// Simulated-runtime knobs (faults, recv timeout) for the distributed
    /// solver.
    pub dist_run: DistRunOpts,
    /// Opt-in to low-precision solves (`--error-tolerance`): the largest
    /// acceptable `±eps` on any finite distance. `None` (the default)
    /// keeps the quantized solver ineligible — approximation is never
    /// silently substituted for the exact `f32` path.
    pub error_tolerance: Option<f64>,
}

impl Default for SolveOpts {
    fn default() -> Self {
        SolveOpts {
            block: 64,
            threads: 0,
            memory_budget: None,
            grid: (2, 2),
            dist: FwConfig::new(64, Variant::Pipelined),
            dist_run: DistRunOpts::default(),
            error_tolerance: None,
        }
    }
}

impl SolveOpts {
    /// Defaults with a specific block size.
    pub fn with_block(block: usize) -> Self {
        SolveOpts { block, ..Default::default() }
    }

    /// The concrete worker count `threads = 0` resolves to.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            rayon::current_num_threads()
        } else {
            self.threads
        }
    }
}

/// Why a solver refuses a particular graph — typed, so callers (and the
/// planner's rendering) can react to the reason rather than parse a string.
#[derive(Clone, Debug, PartialEq)]
pub enum Ineligible {
    /// The algorithm requires non-negative weights (Dijkstra, Δ-stepping).
    NegativeWeights {
        /// How many negative edges the profile counted.
        count: usize,
        /// The most negative weight seen.
        min: f32,
    },
    /// The algorithm computes hop counts, so weights must all be `1`.
    NonUnitWeights,
    /// The algorithm requires an undirected (symmetric) graph.
    Directed,
    /// The algorithm requires a single connected component.
    Disconnected {
        /// Weak components the profile found.
        components: usize,
    },
    /// Estimated working set exceeds [`SolveOpts::memory_budget`].
    MemoryBudget {
        /// Bytes the solver would need.
        required: u64,
        /// The configured ceiling.
        budget: u64,
    },
    /// The quantized solver cannot meet its precision contract on this
    /// graph (overflow, tolerance, sign — see [`crate::quant::QuantError`]).
    Quant(crate::quant::QuantError),
    /// A low-precision solver needs an explicit `--error-tolerance` opt-in;
    /// carries the `±eps` bound it could achieve on this graph.
    NeedsTolerance {
        /// Best achievable error bound (`0.0` when provably exact).
        eps: f64,
    },
}

impl std::fmt::Display for Ineligible {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Ineligible::NegativeWeights { count, min } => {
                write!(f, "negative weights ({count} edges, min {min})")
            }
            Ineligible::NonUnitWeights => write!(f, "weights are not all 1"),
            Ineligible::Directed => write!(f, "graph is directed (asymmetric)"),
            Ineligible::Disconnected { components } => {
                write!(f, "graph is disconnected ({components} weak components)")
            }
            Ineligible::MemoryBudget { required, budget } => write!(
                f,
                "working set {} exceeds budget {}",
                profile::human_bytes(*required),
                profile::human_bytes(*budget)
            ),
            Ineligible::Quant(e) => write!(f, "{e}"),
            Ineligible::NeedsTolerance { eps } => write!(
                f,
                "low-precision solve needs --error-tolerance (achievable +-{eps:.3e})"
            ),
        }
    }
}

/// Errors out of the solver layer.
#[derive(Debug)]
pub enum SolveError {
    /// The named solver cannot handle this graph, and why.
    Ineligible {
        /// Solver that refused.
        solver: &'static str,
        /// The typed reason.
        reason: Ineligible,
    },
    /// A negative cycle makes shortest paths undefined (Johnson).
    NegativeCycle,
    /// The simulated distributed runtime failed.
    Dist(DistError),
    /// The out-of-core tile-store driver failed (I/O, corruption, budget).
    Ooc(crate::ooc::OocError),
    /// No registered solver answers to this name.
    UnknownSolver {
        /// The name that failed to resolve.
        name: String,
        /// Every canonical name the registry does know.
        known: Vec<&'static str>,
    },
    /// The planner found no eligible solver (e.g. the memory budget
    /// excludes everything).
    NoEligibleSolver,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Ineligible { solver, reason } => {
                write!(f, "{solver}: ineligible, {reason}")
            }
            SolveError::NegativeCycle => write!(f, "graph contains a negative cycle"),
            SolveError::Dist(e) => write!(f, "dist: {e}"),
            SolveError::Ooc(e) => write!(f, "ooc: {e}"),
            SolveError::UnknownSolver { name, known } => {
                write!(f, "unknown algorithm '{name}' (known: {}, auto)", known.join(", "))
            }
            SolveError::NoEligibleSolver => write!(f, "no eligible solver for this graph"),
        }
    }
}

impl std::error::Error for SolveError {}

/// What a solver reports about its own run.
#[derive(Clone, Debug, Default)]
pub struct SolverStats {
    /// Wall-clock seconds of the `solve` call (filled by the registry).
    pub wall_s: f64,
    /// Workers the solver actually used (1 for serial solvers).
    pub threads: usize,
    /// Human-readable detail lines for the CLI to print.
    pub notes: Vec<String>,
    /// Machine-readable counters (`("block_gemms", 512.0)`, …).
    pub metrics: Vec<(&'static str, f64)>,
}

/// A solved instance: the distance matrix plus provenance.
#[derive(Clone, Debug)]
pub struct Solution {
    /// All-pairs distances; `INF` where unreachable.
    pub dist: Matrix<f32>,
    /// Canonical name of the solver that produced it.
    pub solver: &'static str,
    /// Run statistics.
    pub stats: SolverStats,
}

/// A cost forecast from [`Solver::estimate`].
#[derive(Clone, Debug)]
pub struct Estimate {
    /// Predicted wall-clock seconds.
    pub seconds: f64,
    /// The formula behind the number, for `apsp plan`.
    pub detail: String,
}

/// One APSP algorithm behind the common surface. Implementations live in
/// [`adapters`]; user code goes through [`Registry`].
pub trait Solver: Send + Sync {
    /// Canonical name (`--algo` value).
    fn name(&self) -> &'static str;

    /// Alternate `--algo` spellings that resolve to this solver.
    fn aliases(&self) -> &'static [&'static str] {
        &[]
    }

    /// One-line description for `apsp plan` and help text.
    fn description(&self) -> &'static str;

    /// Algorithmic eligibility on this graph (shape/sign requirements).
    /// Memory-budget screening is layered on top by [`Solver::eligible`].
    fn check(&self, _profile: &GraphProfile, _opts: &SolveOpts) -> Result<(), Ineligible> {
        Ok(())
    }

    /// Estimated peak bytes the solver touches on this graph.
    fn working_set_bytes(&self, profile: &GraphProfile, opts: &SolveOpts) -> u64;

    /// Cost forecast from the profile (never runs the solver).
    fn estimate(&self, profile: &GraphProfile, opts: &SolveOpts) -> Estimate;

    /// `Some(reason)` if the planner must never auto-select this solver
    /// even when eligible (e.g. the simulated distributed runtime).
    fn auto_excluded(&self) -> Option<&'static str> {
        None
    }

    /// Run the algorithm. `stats.wall_s` is filled by the caller.
    fn solve(&self, g: &Graph, opts: &SolveOpts) -> Result<Solution, SolveError>;

    /// [`Solver::check`] plus the uniform memory-budget screen.
    fn eligible(&self, profile: &GraphProfile, opts: &SolveOpts) -> Result<(), Ineligible> {
        self.check(profile, opts)?;
        if let Some(budget) = opts.memory_budget {
            let required = self.working_set_bytes(profile, opts);
            if required > budget {
                return Err(Ineligible::MemoryBudget { required, budget });
            }
        }
        Ok(())
    }
}

/// The set of known solvers; the single dispatch point for the CLI, the
/// perf suite, and the oracle tests.
pub struct Registry {
    solvers: Vec<Box<dyn Solver>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::with_all()
    }
}

impl Registry {
    /// Every solver in the workspace, in presentation order.
    pub fn with_all() -> Registry {
        Registry { solvers: adapters::all() }
    }

    /// Iterate the registered solvers.
    pub fn solvers(&self) -> impl Iterator<Item = &dyn Solver> {
        self.solvers.iter().map(|s| s.as_ref())
    }

    /// Canonical names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.solvers.iter().map(|s| s.name()).collect()
    }

    /// Resolve a name or alias.
    pub fn get(&self, name: &str) -> Result<&dyn Solver, SolveError> {
        self.solvers()
            .find(|s| s.name() == name || s.aliases().contains(&name))
            .ok_or_else(|| SolveError::UnknownSolver { name: name.to_string(), known: self.names() })
    }

    /// Profile the graph, check eligibility, run the named solver, and
    /// stamp the wall clock. `"auto"` delegates to [`Registry::solve_auto`].
    pub fn solve(&self, name: &str, g: &Graph, opts: &SolveOpts) -> Result<Solution, SolveError> {
        if name == "auto" {
            return self.solve_auto(g, opts).map(|(_, sol)| sol);
        }
        let solver = self.get(name)?;
        let profile = GraphProfile::compute(g, opts.block);
        solver
            .eligible(&profile, opts)
            .map_err(|reason| SolveError::Ineligible { solver: solver.name(), reason })?;
        let t0 = Instant::now();
        let mut sol = solver.solve(g, opts)?;
        sol.stats.wall_s = t0.elapsed().as_secs_f64();
        Ok(sol)
    }

    /// Score every solver on this graph and return the explainable plan.
    pub fn plan(&self, g: &Graph, opts: &SolveOpts) -> Plan {
        self.plan_for_profile(GraphProfile::compute(g, opts.block), opts)
    }

    /// [`Registry::plan`] when the profile is already in hand.
    pub fn plan_for_profile(&self, profile: GraphProfile, opts: &SolveOpts) -> Plan {
        planner::plan(self, profile, opts)
    }

    /// Plan, then run the chosen solver. Errors with
    /// [`SolveError::NoEligibleSolver`] when the plan is empty.
    pub fn solve_auto(&self, g: &Graph, opts: &SolveOpts) -> Result<(Plan, Solution), SolveError> {
        let plan = self.plan(g, opts);
        let chosen = plan.chosen.ok_or(SolveError::NoEligibleSolver)?;
        let sol = self.solve(chosen, g, opts)?;
        Ok((plan, sol))
    }
}
