//! Load generator for the serve layer: mixed query/update traffic against
//! an [`apsp_core::serve::Engine`], reporting p50/p99 batched-query
//! latency and epoch lag under update pressure.
//!
//! Two transports, one traffic shape:
//!
//! * **in-process** ([`run_inproc`]) — readers call the engine directly;
//!   this is what the perf suite's `serve/*` entries measure (no socket
//!   noise, pure engine latency);
//! * **TCP** ([`run_tcp`]) — readers and the writer speak the
//!   `apsp serve` line protocol over sockets; this is what CI's
//!   `serve-smoke` drives against a real server process, including a
//!   bad-input mix to prove typed rejections don't kill the server.
//!
//! Both modes *assert* epoch consistency while measuring: every reader
//! batch must be internally consistent (one epoch per response line /
//! snapshot), epochs must be monotone per reader, and distances for a
//! repeated pair must never increase across epochs. A torn read fails the
//! run loudly instead of skewing a percentile.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use apsp_core::serve::{proto, Engine};
use apsp_graph::generators::{self, WeightKind};
use rand::prelude::*;
use rand::rngs::StdRng;

use crate::json::Json;
use crate::perf::Entry;

/// Traffic shape for one load-generator run.
#[derive(Clone, Debug)]
pub struct LoadCfg {
    /// Vertices in the served graph (in-process mode solves it; TCP mode
    /// queries whatever the server loaded and learns `n` via `info`).
    pub n: usize,
    /// Concurrent reader connections/threads.
    pub readers: usize,
    /// Point-to-point queries per batch (one `dist` line in TCP mode).
    pub batch: usize,
    /// Batches each reader resolves before finishing.
    pub batches_per_reader: usize,
    /// Edge decreases per writer batch (one `update` line).
    pub update_batch: usize,
    /// Mix deliberately malformed updates (out-of-range vertices) into the
    /// writer stream; the run then *requires* typed rejections to appear.
    pub bad_input: bool,
    /// RNG seed for the whole run.
    pub seed: u64,
}

impl Default for LoadCfg {
    fn default() -> Self {
        LoadCfg {
            n: 256,
            readers: 4,
            batch: 32,
            batches_per_reader: 200,
            update_batch: 4,
            bad_input: false,
            seed: 42,
        }
    }
}

/// Measured result of a load run.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Vertices served.
    pub n: usize,
    /// Reader count.
    pub readers: usize,
    /// Queries per batch.
    pub batch: usize,
    /// Total reader batches resolved.
    pub total_batches: usize,
    /// Total point-to-point queries answered.
    pub total_queries: usize,
    /// Wall-clock of the mixed phase, seconds.
    pub duration_s: f64,
    /// Queries per second across all readers.
    pub qps: f64,
    /// Median batched-query latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile batched-query latency, microseconds.
    pub p99_us: f64,
    /// Worst batched-query latency, microseconds.
    pub max_us: f64,
    /// Epochs the writer published during the run.
    pub epochs_published: u64,
    /// Accepted updates.
    pub updates_applied: usize,
    /// Typed per-update rejections observed.
    pub updates_rejected: usize,
    /// Worst observed reader epoch lag (published - answered-from).
    pub epoch_lag_max: u64,
    /// Mean observed reader epoch lag.
    pub epoch_lag_mean: f64,
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() as f64 * p).ceil() as usize).clamp(1, sorted_us.len()) - 1;
    sorted_us[idx]
}

fn summarize(
    cfg: &LoadCfg,
    mut lat_us: Vec<f64>,
    lags: Vec<u64>,
    duration_s: f64,
    epochs_published: u64,
    updates_applied: usize,
    updates_rejected: usize,
) -> LoadReport {
    lat_us.sort_by(|a, b| a.total_cmp(b));
    let total_batches = lat_us.len();
    let total_queries = total_batches * cfg.batch;
    let lag_max = lags.iter().copied().max().unwrap_or(0);
    let lag_mean = if lags.is_empty() {
        0.0
    } else {
        lags.iter().sum::<u64>() as f64 / lags.len() as f64
    };
    LoadReport {
        n: cfg.n,
        readers: cfg.readers,
        batch: cfg.batch,
        total_batches,
        total_queries,
        duration_s,
        qps: total_queries as f64 / duration_s.max(1e-9),
        p50_us: percentile(&lat_us, 0.50),
        p99_us: percentile(&lat_us, 0.99),
        max_us: lat_us.last().copied().unwrap_or(0.0),
        epochs_published,
        updates_applied,
        updates_rejected,
        epoch_lag_max: lag_max,
        epoch_lag_mean: lag_mean,
    }
}

/// Generate one writer batch; with `bad_input`, the first triple of every
/// fourth batch is out of range (a typed `badvertex` rejection downstream).
fn writer_batch(rng: &mut StdRng, n: usize, k: usize, bad: bool, seq: usize) -> Vec<(usize, usize, f32)> {
    let mut batch: Vec<(usize, usize, f32)> = (0..k)
        .map(|_| {
            (
                rng.random_range(0..n),
                rng.random_range(0..n),
                rng.random_range(1..8) as f32 * 0.5,
            )
        })
        .collect();
    if bad && seq.is_multiple_of(4) {
        batch[0] = (n + seq, 0, 1.0);
    }
    batch
}

/// Drive mixed traffic against an in-process engine serving an
/// Erdős–Rényi graph of `cfg.n` vertices. Readers resolve
/// `batches_per_reader` batches each while the writer continuously applies
/// decrease batches; the writer stops when the readers finish.
pub fn run_inproc(cfg: &LoadCfg) -> LoadReport {
    let g = generators::erdos_renyi(cfg.n, (8.0 / cfg.n as f64).min(1.0), WeightKind::small_ints(), cfg.seed);
    let engine = Arc::new(Engine::solve_from_graph(&g, 64));
    let done = Arc::new(AtomicBool::new(false));

    let t0 = Instant::now();
    let readers: Vec<_> = (0..cfg.readers)
        .map(|r| {
            let engine = Arc::clone(&engine);
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(cfg.seed ^ (0x5eed + r as u64));
                let mut lat_us = Vec::with_capacity(cfg.batches_per_reader);
                let mut lags = Vec::with_capacity(cfg.batches_per_reader);
                let mut last_epoch = 0u64;
                // fixed pool of pairs so monotonicity is repeatedly observable
                let pool: Vec<(usize, usize)> = (0..64)
                    .map(|_| (rng.random_range(0..cfg.n), rng.random_range(0..cfg.n)))
                    .collect();
                let mut history: Vec<(u64, f32)> = vec![(0, f32::INFINITY); pool.len()];
                for _ in 0..cfg.batches_per_reader {
                    let pairs: Vec<(usize, usize)> = (0..cfg.batch)
                        .map(|_| pool[rng.random_range(0..pool.len())])
                        .collect();
                    let t = Instant::now();
                    let snap = engine.snapshot();
                    let answers = snap.dist_batch(&pairs).expect("pool is in range");
                    lat_us.push(t.elapsed().as_secs_f64() * 1e6);

                    // consistency: monotone epochs per reader, monotone
                    // non-increasing distances per pair across epochs
                    assert!(snap.epoch() >= last_epoch, "epoch went backwards");
                    last_epoch = snap.epoch();
                    for (&(s, t_), &d) in pairs.iter().zip(&answers) {
                        let slot = pool.iter().position(|&p| p == (s, t_)).unwrap();
                        let (e0, d0) = history[slot];
                        if snap.epoch() > e0 {
                            assert!(d <= d0, "dist({s},{t_}) grew across epochs");
                            history[slot] = (snap.epoch(), d);
                        } else if snap.epoch() == e0 {
                            assert!(d.to_bits() == d0.to_bits() || d0.is_infinite());
                        }
                    }
                    lags.push(engine.latest_epoch().saturating_sub(snap.epoch()));
                }
                (lat_us, lags)
            })
        })
        .collect();

    // writer: continuous update pressure until the readers are done
    let writer = {
        let engine = Arc::clone(&engine);
        let done = Arc::clone(&done);
        let cfg = cfg.clone();
        std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7772_6974);
            let (mut applied, mut rejected, mut seq) = (0usize, 0usize, 0usize);
            while !done.load(Ordering::Acquire) {
                let batch = writer_batch(&mut rng, cfg.n, cfg.update_batch, cfg.bad_input, seq);
                let out = engine.apply(&batch);
                applied += out.report.applied;
                rejected += out.report.rejected();
                seq += 1;
            }
            (applied, rejected)
        })
    };

    let mut lat_us = Vec::new();
    let mut lags = Vec::new();
    for h in readers {
        let (l, g) = h.join().expect("reader thread");
        lat_us.extend(l);
        lags.extend(g);
    }
    done.store(true, Ordering::Release);
    let (applied, rejected) = writer.join().expect("writer thread");
    let duration_s = t0.elapsed().as_secs_f64();

    if cfg.bad_input {
        assert!(rejected > 0, "bad-input mix must surface typed rejections");
    }
    summarize(cfg, lat_us, lags, duration_s, engine.latest_epoch(), applied, rejected)
}

fn send_line(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> Result<String, String> {
    stream
        .write_all(line.as_bytes())
        .and_then(|_| stream.write_all(b"\n"))
        .map_err(|e| format!("send: {e}"))?;
    let mut resp = String::new();
    reader.read_line(&mut resp).map_err(|e| format!("recv: {e}"))?;
    if resp.is_empty() {
        return Err("server closed the connection".into());
    }
    Ok(resp.trim_end().to_string())
}

fn connect(addr: &str) -> Result<(TcpStream, BufReader<TcpStream>), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_nodelay(true).ok();
    let rd = BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
    Ok((stream, rd))
}

/// Drive the same mixed traffic over TCP against a running `apsp serve
/// --listen` process. Learns `n` from the server (`info`), so `cfg.n` is
/// ignored for query generation. Latency here is request round-trip.
pub fn run_tcp(addr: &str, cfg: &LoadCfg) -> Result<LoadReport, String> {
    // learn the matrix size + starting epoch
    let (mut probe, mut probe_rd) = connect(addr)?;
    let resp = send_line(&mut probe, &mut probe_rd, "info")?;
    let (epoch0, rest) = proto::parse_ok(&resp)?;
    let n: usize = rest
        .first()
        .and_then(|t| t.strip_prefix("n="))
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| format!("bad info response '{resp}'"))?;
    let _ = send_line(&mut probe, &mut probe_rd, "quit");
    let mut cfg = cfg.clone();
    cfg.n = n;

    let newest = Arc::new(AtomicU64::new(epoch0));
    let done = Arc::new(AtomicBool::new(false));
    let t0 = Instant::now();

    let readers: Vec<_> = (0..cfg.readers)
        .map(|r| {
            let addr = addr.to_string();
            let cfg = cfg.clone();
            let newest = Arc::clone(&newest);
            std::thread::spawn(move || -> Result<(Vec<f64>, Vec<u64>), String> {
                let (mut stream, mut rd) = connect(&addr)?;
                let mut rng = StdRng::seed_from_u64(cfg.seed ^ (0x5eed + r as u64));
                let mut lat_us = Vec::with_capacity(cfg.batches_per_reader);
                let mut lags = Vec::with_capacity(cfg.batches_per_reader);
                let mut last_epoch = 0u64;
                let pool: Vec<(usize, usize)> = (0..64)
                    .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
                    .collect();
                let mut history: Vec<(u64, f32)> = vec![(0, f32::INFINITY); pool.len()];
                for _ in 0..cfg.batches_per_reader {
                    let pairs: Vec<(usize, usize)> = (0..cfg.batch)
                        .map(|_| pool[rng.random_range(0..pool.len())])
                        .collect();
                    let mut line = String::from("dist");
                    for &(s, t) in &pairs {
                        line.push_str(&format!(" {s} {t}"));
                    }
                    let t = Instant::now();
                    let resp = send_line(&mut stream, &mut rd, &line)?;
                    lat_us.push(t.elapsed().as_secs_f64() * 1e6);

                    let (epoch, vals) = proto::parse_ok(&resp)?;
                    if vals.len() != pairs.len() {
                        return Err(format!("short response: {} of {}", vals.len(), pairs.len()));
                    }
                    if epoch < last_epoch {
                        return Err(format!("epoch went backwards {last_epoch} -> {epoch}"));
                    }
                    last_epoch = epoch;
                    for ((s, t_), tok) in pairs.iter().zip(&vals) {
                        let d = proto::parse_dist_tok(tok)?;
                        let slot = pool.iter().position(|p| p == &(*s, *t_)).unwrap();
                        let (e0, d0) = history[slot];
                        if epoch > e0 {
                            if d > d0 {
                                return Err(format!("dist({s},{t_}) grew {d0} -> {d}"));
                            }
                            history[slot] = (epoch, d);
                        } else if epoch == e0 && d.to_bits() != d0.to_bits() && !d0.is_infinite() {
                            return Err(format!("torn read at epoch {epoch}: {d0} vs {d}"));
                        }
                    }
                    lags.push(newest.load(Ordering::Acquire).saturating_sub(epoch));
                    newest.fetch_max(epoch, Ordering::AcqRel);
                }
                let _ = send_line(&mut stream, &mut rd, "quit");
                Ok((lat_us, lags))
            })
        })
        .collect();

    // writer connection: continuous update pressure
    let writer = {
        let addr = addr.to_string();
        let cfg = cfg.clone();
        let newest = Arc::clone(&newest);
        let done = Arc::clone(&done);
        std::thread::spawn(move || -> Result<(usize, usize, u64), String> {
            let (mut stream, mut rd) = connect(&addr)?;
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7772_6974);
            let (mut applied, mut rejected, mut seq) = (0usize, 0usize, 0usize);
            let mut epoch = 0u64;
            while !done.load(Ordering::Acquire) {
                let batch = writer_batch(&mut rng, n, cfg.update_batch, cfg.bad_input, seq);
                let mut line = String::from("update");
                for &(u, v, w) in &batch {
                    line.push_str(&format!(" {u} {v} {w}"));
                }
                let resp = send_line(&mut stream, &mut rd, &line)?;
                let (e, toks) = proto::parse_ok(&resp)?;
                epoch = e;
                newest.fetch_max(e, Ordering::AcqRel);
                for tok in &toks {
                    if let Some(v) = tok.strip_prefix("applied=") {
                        applied += v.parse::<usize>().unwrap_or(0);
                    } else if let Some(v) = tok.strip_prefix("rejected=") {
                        rejected += v.parse::<usize>().unwrap_or(0);
                    }
                }
                if cfg.bad_input && seq.is_multiple_of(4) && !resp.contains("reject@0=badvertex") {
                    return Err(format!("expected typed badvertex rejection, got '{resp}'"));
                }
                seq += 1;
            }
            let _ = send_line(&mut stream, &mut rd, "quit");
            Ok((applied, rejected, epoch))
        })
    };

    let mut lat_us = Vec::new();
    let mut lags = Vec::new();
    let mut reader_err = None;
    for h in readers {
        match h.join().expect("reader thread") {
            Ok((l, g)) => {
                lat_us.extend(l);
                lags.extend(g);
            }
            Err(e) => reader_err = Some(e),
        }
    }
    done.store(true, Ordering::Release);
    let (applied, rejected, last_epoch) = writer.join().expect("writer thread")?;
    if let Some(e) = reader_err {
        return Err(format!("reader failed: {e}"));
    }
    let duration_s = t0.elapsed().as_secs_f64();
    if cfg.bad_input && rejected == 0 {
        return Err("bad-input mix produced no typed rejections".into());
    }
    Ok(summarize(
        &cfg,
        lat_us,
        lags,
        duration_s,
        last_epoch.max(newest.load(Ordering::Acquire)),
        applied,
        rejected,
    ))
}

impl LoadReport {
    /// Render as `apsp-bench-perf/1` entries: a `serve/query/p50` and
    /// `serve/query/p99` pair (latency as `wall_s`, so the comparator
    /// gates regressions), plus a `serve/load` summary entry carrying the
    /// full parameter set — `p50_us`/`p99_us`/`epoch_lag_max` included.
    pub fn to_entries(&self, suffix: &str) -> Vec<Entry> {
        let params = vec![
            ("n".to_string(), self.n as f64),
            ("readers".to_string(), self.readers as f64),
            ("batch".to_string(), self.batch as f64),
            ("queries".to_string(), self.total_queries as f64),
            ("qps".to_string(), self.qps),
            ("p50_us".to_string(), self.p50_us),
            ("p99_us".to_string(), self.p99_us),
            ("epochs".to_string(), self.epochs_published as f64),
            ("updates_applied".to_string(), self.updates_applied as f64),
            ("updates_rejected".to_string(), self.updates_rejected as f64),
            ("epoch_lag_max".to_string(), self.epoch_lag_max as f64),
            ("epoch_lag_mean".to_string(), self.epoch_lag_mean),
        ];
        vec![
            Entry {
                name: format!("serve/query/p50{suffix}"),
                group: "serve".to_string(),
                params: params.clone(),
                wall_s: self.p50_us / 1e6,
                dtype: None,
                gflops: None,
                baseline_wall_s: None,
                speedup: None,
            },
            Entry {
                name: format!("serve/query/p99{suffix}"),
                group: "serve".to_string(),
                params: params.clone(),
                wall_s: self.p99_us / 1e6,
                dtype: None,
                gflops: None,
                baseline_wall_s: None,
                speedup: None,
            },
            Entry {
                name: format!("serve/load{suffix}"),
                group: "serve".to_string(),
                params,
                wall_s: self.duration_s,
                dtype: None,
                gflops: None,
                baseline_wall_s: None,
                speedup: None,
            },
        ]
    }

    /// Human-readable one-screen summary.
    pub fn render(&self) -> String {
        format!(
            "serve-load: n={} readers={} batch={}\n\
             {} batches / {} queries in {:.3} s ({:.0} q/s)\n\
             batched-query latency: p50 {:.1} us, p99 {:.1} us, max {:.1} us\n\
             writer: {} epochs published, {} updates applied, {} rejected (typed)\n\
             epoch lag: max {}, mean {:.2}\n",
            self.n,
            self.readers,
            self.batch,
            self.total_batches,
            self.total_queries,
            self.duration_s,
            self.qps,
            self.p50_us,
            self.p99_us,
            self.max_us,
            self.epochs_published,
            self.updates_applied,
            self.updates_rejected,
            self.epoch_lag_max,
            self.epoch_lag_mean,
        )
    }

    /// Wrap the entries in a standalone `apsp-bench-perf/1` document
    /// (mode `serve-load`), for `apsp bench serve-load --out`.
    pub fn to_json(&self, suffix: &str) -> Json {
        let report = crate::perf::Report {
            schema: crate::perf::SCHEMA.to_string(),
            mode: "serve-load".to_string(),
            reps: 1,
            available_parallelism: std::thread::available_parallelism().map_or(1, |p| p.get()),
            entries: self.to_entries(suffix),
        };
        report.to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inproc_load_reports_percentiles_and_consistency() {
        let cfg = LoadCfg {
            n: 48,
            readers: 2,
            batch: 8,
            batches_per_reader: 20,
            update_batch: 2,
            bad_input: true,
            seed: 7,
        };
        let r = run_inproc(&cfg);
        assert_eq!(r.total_batches, 40);
        assert_eq!(r.total_queries, 320);
        assert!(r.p50_us > 0.0 && r.p99_us >= r.p50_us && r.max_us >= r.p99_us);
        assert!(r.updates_rejected > 0, "bad-input mix must be rejected");
        let entries = r.to_entries("");
        assert_eq!(entries.len(), 3);
        assert!(entries.iter().any(|e| e.name == "serve/query/p50"));
        assert!(entries.iter().any(|e| e.name == "serve/query/p99"));
        let load = entries.iter().find(|e| e.name == "serve/load").unwrap();
        for key in ["p50_us", "p99_us", "epoch_lag_max", "qps"] {
            assert!(load.params.iter().any(|(k, _)| k == key), "missing {key}");
        }
    }

    #[test]
    fn percentile_picks_nearest_rank() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&v, 0.50), 5.0);
        assert_eq!(percentile(&v, 0.99), 10.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
