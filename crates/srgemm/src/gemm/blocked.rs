//! Cache-blocked serial semiring GEMM.
//!
//! The loop nest is i-k-j inside tiles: for a fixed `(i, k)` the inner j-loop
//! streams a row of `B` and a row of `C`, which vectorizes for min/+ and keeps
//! both rows hot in L1. Tiles of `KC × NC` of `B` are reused across the `MC`
//! rows of a slab, mirroring (at CPU scale) the shared-memory staging the
//! paper's Cutlass-based SRGEMM performs on the GPU.
//!
//! The micro-kernel unrolls the reduction loop 4× (four rows of `B` against
//! one row of `C` per pass), quartering the load/store traffic on the `C`
//! row — the dominant cost for cheap semiring ops — and uses unchecked slice
//! access so the j-loop compiles to straight-line vector code. The safety
//! argument (all indices bounded by the tile extents validated at entry) is
//! spelled out in DESIGN.md §10 and enforced by `debug_assert!`s.

use crate::matrix::{View, ViewMut};
use crate::semiring::Semiring;

/// Rows of the `C`/`A` slab held in L2 per outer tile.
pub const MC: usize = 64;
/// Inner (reduction) tile; `B[kc, :]` panel stays in L1/L2.
pub const KC: usize = 256;
/// Columns of the `B`/`C` tile.
pub const NC: usize = 512;

/// `C ← C ⊕ A ⊗ B`, cache-tiled.
pub fn gemm_blocked<S: Semiring>(
    c: &mut ViewMut<'_, S::Elem>,
    a: &View<'_, S::Elem>,
    b: &View<'_, S::Elem>,
) {
    super::check_shapes(c, a, b);
    gemm_blocked_tiled::<S>(c, a, b, MC, KC, NC)
}

/// Tiled kernel with explicit tile sizes (exposed for the tiling ablation
/// bench).
///
/// # Panics
/// Panics if any tile size is zero: a zero tile would make the tile-advance
/// loops (`i0 += ib` with `ib = min(tile, remaining) = 0`) spin forever, so
/// the degenerate knobs are rejected at this public boundary instead.
pub fn gemm_blocked_tiled<S: Semiring>(
    c: &mut ViewMut<'_, S::Elem>,
    a: &View<'_, S::Elem>,
    b: &View<'_, S::Elem>,
    mc: usize,
    kc: usize,
    nc: usize,
) {
    super::check_shapes(c, a, b);
    assert!(
        mc > 0 && kc > 0 && nc > 0,
        "gemm tile sizes must be positive (got mc={mc}, kc={kc}, nc={nc})"
    );
    let (m, n, k) = (c.rows(), c.cols(), a.cols());
    let mut i0 = 0;
    while i0 < m {
        let ib = mc.min(m - i0);
        let mut k0 = 0;
        while k0 < k {
            let kb = kc.min(k - k0);
            let mut j0 = 0;
            while j0 < n {
                let jb = nc.min(n - j0);
                micro_kernel::<S>(c, a, b, i0, j0, k0, ib, jb, kb);
                j0 += jb;
            }
            k0 += kb;
        }
        i0 += ib;
    }
}

/// Innermost tile: i-k-j with the reduction (`k`) loop unrolled 4× so each
/// pass over the `C` row folds four `B` rows into it — one load/store of
/// `C(i, j)` per four semiring FMAs instead of per one.
///
/// # Safety argument (bounds-check elimination)
/// All unchecked accesses index slices whose lengths are established right
/// here: `c_row` and each `b_row_l` are sliced to exactly `jb` elements
/// (the slicing itself is checked), and `j < jb` in the inner loop, so
/// every `get_unchecked(j)` is in bounds. `a_row` has `a.cols()` elements
/// and `l < k0 + kb ≤ a.cols()` per `check_shapes` + the caller's tiling
/// arithmetic — re-verified by the `debug_assert!`s below in debug builds.
#[inline]
#[allow(clippy::too_many_arguments)]
fn micro_kernel<S: Semiring>(
    c: &mut ViewMut<'_, S::Elem>,
    a: &View<'_, S::Elem>,
    b: &View<'_, S::Elem>,
    i0: usize,
    j0: usize,
    k0: usize,
    ib: usize,
    jb: usize,
    kb: usize,
) {
    debug_assert!(i0 + ib <= c.rows() && i0 + ib <= a.rows());
    debug_assert!(j0 + jb <= c.cols() && j0 + jb <= b.cols());
    debug_assert!(k0 + kb <= a.cols() && k0 + kb <= b.rows());
    let k_end = k0 + kb;
    for i in i0..i0 + ib {
        let a_row = a.row(i);
        let c_row = &mut c.row_mut(i)[j0..j0 + jb];
        let mut l = k0;
        while l + 4 <= k_end {
            // SAFETY: l..l+4 < k_end ≤ a_row.len() (debug_assert above).
            let (a0, a1, a2, a3) = unsafe {
                (
                    *a_row.get_unchecked(l),
                    *a_row.get_unchecked(l + 1),
                    *a_row.get_unchecked(l + 2),
                    *a_row.get_unchecked(l + 3),
                )
            };
            let b0 = &b.row(l)[j0..j0 + jb];
            let b1 = &b.row(l + 1)[j0..j0 + jb];
            let b2 = &b.row(l + 2)[j0..j0 + jb];
            let b3 = &b.row(l + 3)[j0..j0 + jb];
            for j in 0..jb {
                // SAFETY: j < jb and every slice here has length exactly jb.
                unsafe {
                    let mut cj = *c_row.get_unchecked(j);
                    cj = S::fma(cj, a0, *b0.get_unchecked(j));
                    cj = S::fma(cj, a1, *b1.get_unchecked(j));
                    cj = S::fma(cj, a2, *b2.get_unchecked(j));
                    cj = S::fma(cj, a3, *b3.get_unchecked(j));
                    *c_row.get_unchecked_mut(j) = cj;
                }
            }
            l += 4;
        }
        while l < k_end {
            // SAFETY: l < k_end ≤ a_row.len().
            let a_il = unsafe { *a_row.get_unchecked(l) };
            let b_row = &b.row(l)[j0..j0 + jb];
            for j in 0..jb {
                // SAFETY: j < jb = length of both slices.
                unsafe {
                    *c_row.get_unchecked_mut(j) =
                        S::fma(*c_row.get_unchecked(j), a_il, *b_row.get_unchecked(j));
                }
            }
            l += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm_naive;
    use crate::matrix::Matrix;
    use crate::semiring::MinPlus;

    type MP = MinPlus<f64>;

    /// Deterministic pseudo-random matrix without pulling in rand.
    fn lcg_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        Matrix::from_fn(rows, cols, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 1000) as f64 / 10.0
        })
    }

    #[test]
    fn blocked_matches_naive_across_tile_boundaries() {
        // sizes straddle the MC/KC/NC boundaries when tiles are tiny
        for &(m, n, k) in &[(1, 1, 1), (7, 5, 9), (16, 16, 16), (33, 17, 65)] {
            let a = lcg_matrix(m, k, 1);
            let b = lcg_matrix(k, n, 2);
            let mut c1 = lcg_matrix(m, n, 3);
            let mut c2 = c1.clone();
            gemm_naive::<MP>(&mut c1.view_mut(), &a.view(), &b.view());
            gemm_blocked_tiled::<MP>(&mut c2.view_mut(), &a.view(), &b.view(), 8, 4, 8);
            assert!(c1.eq_exact(&c2), "mismatch at ({m},{n},{k})");
        }
    }

    #[test]
    fn k_remainders_hit_both_unroll_paths() {
        // kb mod 4 ∈ {0, 1, 2, 3}: every remainder exercises the unrolled
        // body plus the scalar tail of the micro-kernel
        for k in [4, 5, 6, 7, 8, 13] {
            let a = lcg_matrix(9, k, 10 + k as u64);
            let b = lcg_matrix(k, 11, 20 + k as u64);
            let mut c1 = lcg_matrix(9, 11, 30);
            let mut c2 = c1.clone();
            gemm_naive::<MP>(&mut c1.view_mut(), &a.view(), &b.view());
            gemm_blocked::<MP>(&mut c2.view_mut(), &a.view(), &b.view());
            assert!(c1.eq_exact(&c2), "mismatch at k={k}");
        }
    }

    #[test]
    fn non_divisible_tile_sizes() {
        let a = lcg_matrix(13, 11, 4);
        let b = lcg_matrix(11, 19, 5);
        let mut c1 = Matrix::filled(13, 19, f64::INFINITY);
        let mut c2 = c1.clone();
        gemm_naive::<MP>(&mut c1.view_mut(), &a.view(), &b.view());
        gemm_blocked_tiled::<MP>(&mut c2.view_mut(), &a.view(), &b.view(), 5, 3, 7);
        assert!(c1.eq_exact(&c2));
    }

    #[test]
    fn works_on_strided_subviews() {
        // operate on interior blocks of larger parents
        let pa = lcg_matrix(20, 20, 6);
        let pb = lcg_matrix(20, 20, 7);
        let mut pc = lcg_matrix(20, 20, 8);
        let mut pc2 = pc.clone();

        let a = pa.subview(2, 3, 6, 7);
        let b = pb.subview(1, 4, 7, 5);
        gemm_naive::<MP>(&mut pc.subview_mut(3, 3, 6, 5), &a, &b);
        gemm_blocked::<MP>(&mut pc2.subview_mut(3, 3, 6, 5), &a, &b);
        assert!(pc.eq_exact(&pc2));
        // outside the target block nothing changed
        assert_eq!(pc[(0, 0)], pc2[(0, 0)]);
    }

    // Regression: zero tile sizes used to hang forever (`i0 += ib` with
    // `ib = min(0, remaining) = 0`); they must be rejected loudly instead.
    #[test]
    #[should_panic(expected = "tile sizes must be positive")]
    fn zero_mc_is_rejected_not_hung() {
        let a = lcg_matrix(4, 4, 1);
        let b = lcg_matrix(4, 4, 2);
        let mut c = Matrix::filled(4, 4, f64::INFINITY);
        gemm_blocked_tiled::<MP>(&mut c.view_mut(), &a.view(), &b.view(), 0, 4, 4);
    }

    #[test]
    #[should_panic(expected = "tile sizes must be positive")]
    fn zero_kc_is_rejected_not_hung() {
        let a = lcg_matrix(4, 4, 1);
        let b = lcg_matrix(4, 4, 2);
        let mut c = Matrix::filled(4, 4, f64::INFINITY);
        gemm_blocked_tiled::<MP>(&mut c.view_mut(), &a.view(), &b.view(), 4, 0, 4);
    }

    #[test]
    #[should_panic(expected = "tile sizes must be positive")]
    fn zero_nc_is_rejected_not_hung() {
        let a = lcg_matrix(4, 4, 1);
        let b = lcg_matrix(4, 4, 2);
        let mut c = Matrix::filled(4, 4, f64::INFINITY);
        gemm_blocked_tiled::<MP>(&mut c.view_mut(), &a.view(), &b.view(), 4, 4, 0);
    }
}
