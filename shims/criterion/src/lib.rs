//! Std-only shim for the Criterion API subset used by this workspace's
//! benches: `benchmark_group`, `bench_function`, `bench_with_input`,
//! `Throughput`, `BenchmarkId`, and the `criterion_group!`/`criterion_main!`
//! macros.
//!
//! The build environment cannot reach crates.io, so instead of Criterion's
//! statistical machinery this runs each benchmark `sample_size` times after
//! a warm-up pass and prints min/mean wall time (plus derived throughput
//! when one was declared). Good enough to compare kernels by eye; not a
//! statistics engine.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group {name}");
        BenchmarkGroup {
            _c: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        run_one(&id.into(), 10, None, &mut f);
    }
}

/// A named set of related benchmarks sharing sample-size and throughput.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchId>, mut f: F) {
        let id = format!("{}/{}", self.name, id.into().0);
        run_one(&id, self.sample_size, self.throughput, &mut f);
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchId>,
        input: &I,
        mut f: F,
    ) {
        let id = format!("{}/{}", self.name, id.into().0);
        run_one(&id, self.sample_size, self.throughput, &mut |b| f(b, input));
    }

    pub fn finish(self) {}
}

fn run_one(id: &str, samples: usize, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
    f(&mut b); // warm-up
    b.elapsed = Duration::ZERO;
    b.iters = 0;
    for _ in 0..samples {
        f(&mut b);
    }
    let iters = b.iters.max(1);
    let mean = b.elapsed.as_secs_f64() / iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:.3e} elem/s", n as f64 / mean),
        Some(Throughput::Bytes(n)) => format!("  {:.3e} B/s", n as f64 / mean),
        None => String::new(),
    };
    println!("{id:<48} {:>12.3?}/iter over {iters} iters{rate}", Duration::from_secs_f64(mean));
}

/// Per-benchmark timing handle; `iter` runs and times the closure.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let t0 = Instant::now();
        black_box(f());
        self.elapsed += t0.elapsed();
        self.iters += 1;
    }
}

/// Work per iteration, used to derive a rate in the printed summary.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Rendered benchmark identifier.
pub struct BenchId(String);

impl From<&str> for BenchId {
    fn from(s: &str) -> Self {
        BenchId(s.to_string())
    }
}

impl From<String> for BenchId {
    fn from(s: String) -> Self {
        BenchId(s)
    }
}

impl From<BenchmarkId> for BenchId {
    fn from(id: BenchmarkId) -> Self {
        BenchId(id.rendered)
    }
}

/// `BenchmarkId::new("name", parameter)` / `from_parameter(parameter)`.
pub struct BenchmarkId {
    rendered: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { rendered: format!("{}/{parameter}", name.into()) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { rendered: parameter.to_string() }
    }
}

/// Mirrors `criterion_group!`: defines a runner invoking each bench fn.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Mirrors `criterion_main!`: a `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_iterations() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        let mut runs = 0;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
        assert_eq!(runs, 4); // warm-up + 3 samples
    }
}
