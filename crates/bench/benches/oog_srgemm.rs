//! Offload engine benchmark: functional ooGSrGemm (real data through the
//! simulated device) vs the in-core GEMM, and the stream-count ablation
//! from §4.5 (1 stream = serialized pipeline, ≥3 = fully overlapped).
//! Wall-clock here measures the *engine overhead*; the simulated-time
//! behaviour is covered by the fig5/fig6 harnesses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::{oog_srgemm, GpuSpec, OogConfig, SimGpu};
use srgemm::gemm::gemm_blocked;
use srgemm::{Matrix, MinPlusF32};

fn lcg(rows: usize, cols: usize, seed: u64) -> Matrix<f32> {
    let mut state = seed | 1;
    Matrix::from_fn(rows, cols, |_, _| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((state >> 33) % 1024) as f32
    })
}

fn bench_oog(c: &mut Criterion) {
    let mut g = c.benchmark_group("oog_srgemm");
    g.sample_size(10);
    let (m, n, k) = (512usize, 512usize, 96usize);
    let a = lcg(m, k, 1);
    let b = lcg(k, n, 2);
    let c0 = lcg(m, n, 3);

    g.bench_function("in_core_gemm", |bch| {
        bch.iter(|| {
            let mut cm = c0.clone();
            gemm_blocked::<MinPlusF32>(&mut cm.view_mut(), &a.view(), &b.view());
            cm
        })
    });
    for &streams in &[1usize, 2, 3, 4] {
        g.bench_with_input(BenchmarkId::new("oog_streams", streams), &streams, |bch, &s| {
            let gpu = SimGpu::new(GpuSpec::summit_v100());
            let cfg = OogConfig::new(128, 128, s);
            bch.iter(|| {
                let mut cm = c0.clone();
                oog_srgemm::<MinPlusF32>(&gpu, &cfg, &mut cm.view_mut(), &a.view(), &b.view())
                    .expect("fits");
                cm
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_oog);
criterion_main!(benches);
