//! [`Solver`] adapters: every APSP algorithm in the workspace wrapped
//! behind the common trait. Each adapter owns its eligibility rules, its
//! cost model (constants in [`super::planner`]), and the translation from the
//! algorithm's native error type into [`SolveError`].

use apsp_graph::delta_stepping::apsp_by_delta_stepping;
use apsp_graph::dijkstra::apsp_by_dijkstra_threads;
use apsp_graph::johnson::{johnson_apsp_threads, JohnsonError};
use apsp_graph::seidel::{seidel_apsp, SeidelError};
use apsp_graph::Graph;
use srgemm::{Matrix, MinPlusF32};

use crate::dc_apsp::dc_apsp;
use crate::dist::distributed_apsp_opts;
use crate::fw_blocked::{fw_blocked, DiagMethod};
use crate::fw_seq::fw_seq;
use crate::fw_sparse::fw_block_sparse;
use crate::ooc::{
    choose_tile, solve_in_store, staged_budget_floor, FileStore, MemStore, OocConfig, OocError,
};
use crate::quant::{self, QuantDtype, QuantPlan};

use super::planner::{
    delta_sweep_seconds, dense_flops, sssp_sweep_seconds, T_DISK, T_FLOP_BLOCKED, T_FLOP_PACKED,
    T_FLOP_SEQ, T_QUANT_I32, T_QUANT_U16, T_RELAX,
    T_SIM_RANK,
};
use super::{
    Estimate, GraphProfile, Ineligible, Solution, SolveError, SolveOpts, Solver, SolverStats,
};

/// All adapters, in presentation order (the order `apsp plan` lists
/// ineligible rows and `--help` lists names).
pub fn all() -> Vec<Box<dyn Solver>> {
    vec![
        Box::new(Blocked),
        Box::new(Quant),
        Box::new(Dc),
        Box::new(FwSeq),
        Box::new(Ooc),
        Box::new(Sparse),
        Box::new(Johnson),
        Box::new(Dijkstra),
        Box::new(DeltaStepping),
        Box::new(Seidel),
        Box::new(Dist),
    ]
}

/// Run `f` under a rayon pool capped at `threads` workers (`0` → no cap:
/// run on the ambient pool). This is how the dense solvers — which size
/// themselves off `rayon::current_num_threads()` via `budget_threads` —
/// inherit the [`SolveOpts::threads`] budget.
fn with_thread_cap<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    if threads == 0 {
        return f();
    }
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("shim pool construction is infallible")
        .install(f)
}

fn solution(dist: Matrix<f32>, solver: &'static str, threads: usize) -> Solution {
    Solution { dist, solver, stats: SolverStats { threads, ..Default::default() } }
}

/// Packed register-tiled blocked Floyd-Warshall (the paper's single-node
/// engine), parallel over block rows.
struct Blocked;

impl Solver for Blocked {
    fn name(&self) -> &'static str {
        "blocked"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["dense", "packed"]
    }
    fn description(&self) -> &'static str {
        "packed register-tiled blocked FW (multicore dense engine)"
    }
    fn working_set_bytes(&self, profile: &GraphProfile, opts: &SolveOpts) -> u64 {
        profile.dense_bytes + (2 * profile.n * opts.block.max(1) * 4) as u64
    }
    fn estimate(&self, profile: &GraphProfile, opts: &SolveOpts) -> Estimate {
        let t = opts.effective_threads();
        Estimate {
            seconds: dense_flops(profile.n) * T_FLOP_PACKED / t as f64,
            detail: "2n³ · t_packed / threads".into(),
        }
    }
    fn solve(&self, g: &Graph, opts: &SolveOpts) -> Result<Solution, SolveError> {
        let threads = opts.effective_threads();
        let mut d = g.to_dense();
        with_thread_cap(opts.threads, || {
            fw_blocked::<MinPlusF32>(&mut d, opts.block.max(1), DiagMethod::FwClosure, threads > 1)
        });
        Ok(solution(d, self.name(), threads))
    }
}

/// Quantized integer blocked FW: weights scaled-and-rounded into `u16` or
/// `i32` saturating min-plus lanes (2–4× the SIMD width of `f32` through
/// the same packed kernel), dequantized under a provable `±eps` bound.
/// Opt-in via [`SolveOpts::error_tolerance`] — never silently substituted
/// for the exact `f32` path.
struct Quant;

impl Quant {
    /// The quantization plan for this profile, or the typed reason there
    /// is none. Without an `error_tolerance` opt-in the answer is always
    /// [`Ineligible::NeedsTolerance`], carrying the bound a quantized
    /// solve *could* achieve here.
    fn quant_plan(profile: &GraphProfile, opts: &SolveOpts) -> Result<QuantPlan, Ineligible> {
        let attempt = |tol: f64| {
            quant::plan(
                profile.n,
                profile.min_weight,
                profile.max_weight,
                profile.integral_weights,
                tol,
            )
        };
        match opts.error_tolerance {
            Some(tol) => attempt(tol).map_err(Ineligible::Quant),
            None => match attempt(f64::INFINITY) {
                Ok(p) => Err(Ineligible::NeedsTolerance { eps: p.eps }),
                Err(e) => Err(Ineligible::Quant(e)),
            },
        }
    }
}

impl Solver for Quant {
    fn name(&self) -> &'static str {
        "quant"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["q16", "q32"]
    }
    fn description(&self) -> &'static str {
        "quantized integer blocked FW (u16/i32 saturating lanes, ±eps bound)"
    }
    fn check(&self, profile: &GraphProfile, opts: &SolveOpts) -> Result<(), Ineligible> {
        Self::quant_plan(profile, opts).map(|_| ())
    }
    fn working_set_bytes(&self, profile: &GraphProfile, opts: &SolveOpts) -> u64 {
        let ebytes = Self::quant_plan(profile, opts).map(|p| p.dtype.bytes()).unwrap_or(4) as u64;
        let n = profile.n as u64;
        // quantized matrix + dequantized f32 result + two pack panels
        n * n * ebytes + profile.dense_bytes + 2 * n * opts.block.max(1) as u64 * ebytes
    }
    fn estimate(&self, profile: &GraphProfile, opts: &SolveOpts) -> Estimate {
        let t = opts.effective_threads();
        let (t_flop, lane) = match Self::quant_plan(profile, opts) {
            Ok(QuantPlan { dtype: QuantDtype::U16, .. }) => (T_QUANT_U16, "u16"),
            _ => (T_QUANT_I32, "i32"),
        };
        Estimate {
            seconds: dense_flops(profile.n) * t_flop / t as f64,
            detail: format!("2n³ · t_quant({lane}) / threads"),
        }
    }
    fn solve(&self, g: &Graph, opts: &SolveOpts) -> Result<Solution, SolveError> {
        let profile = GraphProfile::compute(g, opts.block);
        let plan = Self::quant_plan(&profile, opts)
            .map_err(|reason| SolveError::Ineligible { solver: self.name(), reason })?;
        let threads = opts.effective_threads();
        let d = with_thread_cap(opts.threads, || {
            quant::solve_quantized(g, &plan, opts.block.max(1), threads > 1)
        });
        let mut sol = solution(d, self.name(), threads);
        sol.stats.notes.push(format!(
            "quant: {} lanes, scale {}, {}",
            plan.dtype.name(),
            plan.scale,
            if plan.exact {
                "bit-exact".to_string()
            } else {
                format!("|error| <= {:.3e}", plan.eps)
            }
        ));
        sol.stats.metrics.extend([
            ("quant_elem_bytes", plan.dtype.bytes() as f64),
            ("quant_scale", plan.scale),
            ("quant_eps", plan.eps),
            ("quant_exact", if plan.exact { 1.0 } else { 0.0 }),
        ]);
        Ok(sol)
    }
}

/// Divide-and-conquer FW (cache-oblivious recursion over the same packed
/// GEMM).
struct Dc;

impl Solver for Dc {
    fn name(&self) -> &'static str {
        "dc"
    }
    fn description(&self) -> &'static str {
        "divide-and-conquer FW (cache-oblivious recursion)"
    }
    fn working_set_bytes(&self, profile: &GraphProfile, _opts: &SolveOpts) -> u64 {
        profile.dense_bytes
    }
    fn estimate(&self, profile: &GraphProfile, opts: &SolveOpts) -> Estimate {
        let t = opts.effective_threads();
        Estimate {
            seconds: dense_flops(profile.n) * T_FLOP_PACKED * 1.2 / t as f64,
            detail: "2n³ · 1.2·t_packed / threads (recursion overhead)".into(),
        }
    }
    fn solve(&self, g: &Graph, opts: &SolveOpts) -> Result<Solution, SolveError> {
        let threads = opts.effective_threads();
        let mut d = g.to_dense();
        with_thread_cap(opts.threads, || {
            dc_apsp::<MinPlusF32>(&mut d, opts.block.max(1), threads > 1)
        });
        Ok(solution(d, self.name(), threads))
    }
}

/// Sequential triple-loop FW: the reference everything else is verified
/// against.
struct FwSeq;

impl Solver for FwSeq {
    fn name(&self) -> &'static str {
        "fw"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["seq"]
    }
    fn description(&self) -> &'static str {
        "sequential triple-loop FW (reference oracle)"
    }
    fn working_set_bytes(&self, profile: &GraphProfile, _opts: &SolveOpts) -> u64 {
        profile.dense_bytes
    }
    fn estimate(&self, profile: &GraphProfile, _opts: &SolveOpts) -> Estimate {
        Estimate { seconds: dense_flops(profile.n) * T_FLOP_SEQ, detail: "2n³ · t_seq, serial".into() }
    }
    fn solve(&self, g: &Graph, _opts: &SolveOpts) -> Result<Solution, SolveError> {
        let mut d = g.to_dense();
        fw_seq::<MinPlusF32>(&mut d);
        Ok(solution(d, self.name(), 1))
    }
}

/// Double-buffer depth of the out-of-core solver's tile store.
const OOC_DEPTH: usize = 2;

/// Out-of-core blocked FW: the matrix lives in a tile store of packed-GEMM
/// blobs (file-backed when the memory budget forces staging), and the
/// driver walks the blocked-FW schedule under that budget. The only dense
/// solver that stays eligible when `--memory-budget` is below the dense
/// matrix size.
struct Ooc;

impl Ooc {
    /// Resident bytes of an *in-memory* out-of-core run: the blob store
    /// (~dense + pack padding), the decoded tile cache (~dense again), and
    /// scratch. The margin keeps this mode honest — if it doesn't fit, the
    /// solver stages to disk instead.
    fn in_mem_bytes(dense_bytes: u64) -> u64 {
        2 * dense_bytes + dense_bytes / 4
    }

    /// Staged when a budget exists and the in-memory footprint busts it.
    fn staged_under(opts: &SolveOpts, dense_bytes: u64) -> Option<u64> {
        opts.memory_budget.filter(|&b| b < Self::in_mem_bytes(dense_bytes))
    }
}

impl Solver for Ooc {
    fn name(&self) -> &'static str {
        "ooc"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["out-of-core", "staged"]
    }
    fn description(&self) -> &'static str {
        "out-of-core blocked FW (tile store staged to disk under a RAM budget)"
    }
    fn working_set_bytes(&self, profile: &GraphProfile, opts: &SolveOpts) -> u64 {
        match Self::staged_under(opts, profile.dense_bytes) {
            Some(budget) => match choose_tile::<f32>(profile.n, budget, OOC_DEPTH) {
                Some(tile) => staged_budget_floor::<f32>(tile, OOC_DEPTH),
                // nothing fits: report the smallest possible floor, which
                // exceeds the budget and turns into a typed MemoryBudget row
                None => staged_budget_floor::<f32>(8.min(profile.n.max(1)), OOC_DEPTH),
            },
            None => Self::in_mem_bytes(profile.dense_bytes),
        }
    }
    fn estimate(&self, profile: &GraphProfile, opts: &SolveOpts) -> Estimate {
        let t = opts.effective_threads();
        let compute = dense_flops(profile.n) * T_FLOP_PACKED * 1.15 / t as f64;
        match Self::staged_under(opts, profile.dense_bytes) {
            Some(budget) => {
                let tile = choose_tile::<f32>(profile.n, budget, OOC_DEPTH).unwrap_or(8);
                let passes = profile.n.div_ceil(tile.max(1)) as f64;
                // each block iteration re-reads and re-writes ~the matrix
                let disk = passes * 2.0 * profile.dense_bytes as f64 * T_DISK;
                Estimate {
                    seconds: compute + disk,
                    detail: format!(
                        "2n³·1.15·t_packed/threads + ⌈n/{tile}⌉·2n²·4B·t_disk staged"
                    ),
                }
            }
            None => Estimate {
                seconds: compute,
                detail: "2n³ · 1.15·t_packed / threads (tile-store overhead)".into(),
            },
        }
    }
    fn solve(&self, g: &Graph, opts: &SolveOpts) -> Result<Solution, SolveError> {
        let threads = opts.effective_threads();
        let n = g.n();
        let mut d = g.to_dense();
        if n == 0 {
            return Ok(solution(d, self.name(), threads));
        }
        let dense_bytes = (n * n * 4) as u64;
        let run = |d: &mut Matrix<f32>, store: &mut dyn crate::ooc::TileStore, cfg: &OocConfig| {
            with_thread_cap(opts.threads, || solve_in_store::<MinPlusF32>(d, store, cfg))
        };
        let (stats, store_kind) = match Self::staged_under(opts, dense_bytes) {
            Some(budget) => {
                let tile = choose_tile::<f32>(n, budget, OOC_DEPTH).ok_or_else(|| {
                    SolveError::Ooc(OocError::BudgetTooSmall {
                        required: staged_budget_floor::<f32>(8.min(n), OOC_DEPTH),
                        budget,
                    })
                })?;
                let path = std::env::temp_dir().join(format!(
                    "apsp-ooc-{}-{n}x{tile}.tiles",
                    std::process::id()
                ));
                let mut store = FileStore::create::<f32>(&path, n, tile, OOC_DEPTH)
                    .map_err(|e| SolveError::Ooc(e.into()))?;
                let cfg = OocConfig {
                    budget_bytes: budget,
                    depth: OOC_DEPTH,
                    parallel: threads > 1,
                };
                let res = run(&mut d, &mut store, &cfg);
                drop(store);
                let _ = std::fs::remove_file(&path);
                (res.map_err(SolveError::Ooc)?, "file")
            }
            None => {
                let tile = opts.block.max(1).min(n);
                let mut store = MemStore::new::<f32>(n, tile);
                let cfg = OocConfig { parallel: threads > 1, ..OocConfig::unbounded() };
                (run(&mut d, &mut store, &cfg).map_err(SolveError::Ooc)?, "memory")
            }
        };
        let mut sol = solution(d, self.name(), threads);
        sol.stats.notes.push(format!(
            "ooc: {} store, tile {} ({}×{} tiles), peak resident {} of budget {}",
            store_kind,
            stats.tile,
            stats.tiles_per_side,
            stats.tiles_per_side,
            super::profile::human_bytes(stats.peak_resident_bytes),
            if stats.budget_bytes == u64::MAX {
                "∞".to_string()
            } else {
                super::profile::human_bytes(stats.budget_bytes)
            },
        ));
        sol.stats.metrics.extend([
            ("ooc_staged", if stats.staged { 1.0 } else { 0.0 }),
            ("tile", stats.tile as f64),
            ("tiles_read", stats.tiles_read as f64),
            ("tiles_written", stats.tiles_written as f64),
            ("bytes_read", stats.bytes_read as f64),
            ("bytes_written", stats.bytes_written as f64),
            ("peak_resident_bytes", stats.peak_resident_bytes as f64),
            ("io_seconds", stats.io_seconds),
            ("compute_seconds", stats.compute_seconds),
        ]);
        Ok(sol)
    }
}

/// Block-sparse FW: only materialized blocks are stored and multiplied;
/// fill-in grows the block set as closure proceeds.
struct Sparse;

impl Solver for Sparse {
    fn name(&self) -> &'static str {
        "sparse"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["block-sparse"]
    }
    fn description(&self) -> &'static str {
        "block-sparse FW with fill-in (skips empty blocks)"
    }
    fn working_set_bytes(&self, profile: &GraphProfile, opts: &SolveOpts) -> u64 {
        // fill stays within weak components, so the final block set is at
        // most one dense matrix per component
        let b = opts.block.max(1) as u64;
        let input = profile.nnz_blocks as u64 * b * b * 4;
        input.max(profile.dense_bytes / profile.weak_components.max(1) as u64)
    }
    fn estimate(&self, profile: &GraphProfile, _opts: &SolveOpts) -> Estimate {
        Estimate {
            seconds: dense_flops(profile.n) * T_FLOP_BLOCKED * profile.est_fill_work_ratio(),
            detail: format!(
                "2n³ · t_blocked · {:.2} est. fill work, serial",
                profile.est_fill_work_ratio()
            ),
        }
    }
    fn solve(&self, g: &Graph, opts: &SolveOpts) -> Result<Solution, SolveError> {
        let mut sp = g.to_block_sparse(opts.block.max(1));
        let stats = fw_block_sparse::<MinPlusF32>(&mut sp);
        let mut sol = solution(sp.to_dense(), self.name(), 1);
        sol.stats.notes.push(format!(
            "sparse: {} → {} blocks materialized, {:.0}% of dense block work",
            stats.input_blocks,
            stats.output_blocks,
            100.0 * stats.work_ratio()
        ));
        sol.stats.metrics.extend([
            ("input_blocks", stats.input_blocks as f64),
            ("output_blocks", stats.output_blocks as f64),
            ("block_gemms", stats.block_gemms as f64),
            ("work_ratio", stats.work_ratio()),
        ]);
        Ok(sol)
    }
}

/// Johnson's algorithm: Bellman-Ford potentials + one Dijkstra per source,
/// parallel over sources. Handles negative edges (not negative cycles).
struct Johnson;

impl Solver for Johnson {
    fn name(&self) -> &'static str {
        "johnson"
    }
    fn description(&self) -> &'static str {
        "Johnson APSP (BF reweight + Dijkstra sweep, handles negative edges)"
    }
    fn working_set_bytes(&self, profile: &GraphProfile, _opts: &SolveOpts) -> u64 {
        profile.dense_bytes + 12 * profile.m as u64
    }
    fn estimate(&self, profile: &GraphProfile, opts: &SolveOpts) -> Estimate {
        let bf = profile.n as f64 * profile.m as f64 * T_RELAX;
        Estimate {
            seconds: bf + sssp_sweep_seconds(profile, opts.effective_threads()),
            detail: "n·m·t_relax BF + n sweeps (m·t_relax + n·log₂n·t_heap)/threads".into(),
        }
    }
    fn solve(&self, g: &Graph, opts: &SolveOpts) -> Result<Solution, SolveError> {
        let d = johnson_apsp_threads(g, opts.threads).map_err(|e| match e {
            JohnsonError::NegativeCycle => SolveError::NegativeCycle,
        })?;
        Ok(solution(d, self.name(), opts.effective_threads()))
    }
}

/// One Dijkstra per source, parallel over sources. Non-negative weights
/// only.
struct Dijkstra;

impl Solver for Dijkstra {
    fn name(&self) -> &'static str {
        "dijkstra"
    }
    fn description(&self) -> &'static str {
        "per-source Dijkstra sweep (non-negative weights)"
    }
    fn check(&self, profile: &GraphProfile, _opts: &SolveOpts) -> Result<(), Ineligible> {
        if profile.has_negative() {
            return Err(Ineligible::NegativeWeights {
                count: profile.negative_edges,
                min: profile.min_weight,
            });
        }
        Ok(())
    }
    fn working_set_bytes(&self, profile: &GraphProfile, _opts: &SolveOpts) -> u64 {
        profile.dense_bytes + 12 * profile.m as u64
    }
    fn estimate(&self, profile: &GraphProfile, opts: &SolveOpts) -> Estimate {
        Estimate {
            seconds: sssp_sweep_seconds(profile, opts.effective_threads()),
            detail: "n sweeps (m·t_relax + n·log₂n·t_heap)/threads".into(),
        }
    }
    fn solve(&self, g: &Graph, opts: &SolveOpts) -> Result<Solution, SolveError> {
        Ok(solution(apsp_by_dijkstra_threads(g, opts.threads), self.name(), opts.effective_threads()))
    }
}

/// One Δ-stepping sweep per source with Δ = mean edge weight.
struct DeltaStepping;

impl Solver for DeltaStepping {
    fn name(&self) -> &'static str {
        "delta"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["delta-stepping"]
    }
    fn description(&self) -> &'static str {
        "per-source Δ-stepping sweep (non-negative weights)"
    }
    fn check(&self, profile: &GraphProfile, _opts: &SolveOpts) -> Result<(), Ineligible> {
        if profile.has_negative() {
            return Err(Ineligible::NegativeWeights {
                count: profile.negative_edges,
                min: profile.min_weight,
            });
        }
        Ok(())
    }
    fn working_set_bytes(&self, profile: &GraphProfile, _opts: &SolveOpts) -> u64 {
        profile.dense_bytes + 16 * profile.m as u64
    }
    fn estimate(&self, profile: &GraphProfile, opts: &SolveOpts) -> Estimate {
        Estimate {
            seconds: delta_sweep_seconds(profile, opts.effective_threads()),
            detail: "n sweeps · m·t_bucket_relax / threads (no heap term)".into(),
        }
    }
    fn solve(&self, g: &Graph, opts: &SolveOpts) -> Result<Solution, SolveError> {
        // Δ = mean edge weight: one bucket ≈ one expected hop
        let m = g.m();
        let mean = if m == 0 {
            1.0
        } else {
            (g.edges().map(|(_, _, w)| w as f64).sum::<f64>() / m as f64) as f32
        };
        let delta = if mean > 0.0 { mean } else { 1.0 };
        let mut sol =
            solution(apsp_by_delta_stepping(g, delta, opts.threads), self.name(), opts.effective_threads());
        sol.stats.notes.push(format!("Δ = {delta:.3} (mean edge weight)"));
        Ok(sol)
    }
}

/// Seidel's matrix-multiplication APSP: hop counts of a connected,
/// undirected, unit-weight graph.
struct Seidel;

impl Solver for Seidel {
    fn name(&self) -> &'static str {
        "seidel"
    }
    fn description(&self) -> &'static str {
        "Seidel matrix-multiplication APSP (unit weights, undirected, connected)"
    }
    fn check(&self, profile: &GraphProfile, _opts: &SolveOpts) -> Result<(), Ineligible> {
        if !profile.unit_weights {
            return Err(Ineligible::NonUnitWeights);
        }
        if !profile.symmetric {
            return Err(Ineligible::Directed);
        }
        if !profile.connected() {
            return Err(Ineligible::Disconnected { components: profile.weak_components });
        }
        Ok(())
    }
    fn working_set_bytes(&self, profile: &GraphProfile, _opts: &SolveOpts) -> u64 {
        // bool adjacency + u32 distance per recursion level + two f64
        // operands and product for the counting GEMM
        profile.dense_bytes * 8
    }
    fn estimate(&self, profile: &GraphProfile, _opts: &SolveOpts) -> Estimate {
        let levels = (profile.n.max(2) as f64).log2().ceil();
        Estimate {
            seconds: 2.0 * levels * dense_flops(profile.n) * T_FLOP_BLOCKED,
            detail: "2·⌈log₂n⌉ GEMMs · 2n³ · t_blocked, serial".into(),
        }
    }
    fn solve(&self, g: &Graph, _opts: &SolveOpts) -> Result<Solution, SolveError> {
        let hops = seidel_apsp(g).map_err(|e| SolveError::Ineligible {
            solver: self.name(),
            reason: match e {
                SeidelError::NotUndirected => Ineligible::Directed,
                SeidelError::Disconnected => Ineligible::Disconnected { components: 2 },
            },
        })?;
        let d = Matrix::from_fn(g.n(), g.n(), |i, j| hops[(i, j)] as f32);
        Ok(solution(d, self.name(), 1))
    }
}

/// The distributed driver on the in-process simulated runtime. Correct on
/// any graph, but it *simulates* a cluster on one machine — the planner
/// never auto-selects it.
struct Dist;

impl Solver for Dist {
    fn name(&self) -> &'static str {
        "dist"
    }
    fn description(&self) -> &'static str {
        "distributed blocked FW on the simulated mpi runtime"
    }
    fn auto_excluded(&self) -> Option<&'static str> {
        Some("in-process cluster simulation — benchmarking/validation target")
    }
    fn working_set_bytes(&self, profile: &GraphProfile, opts: &SolveOpts) -> u64 {
        let p = (opts.grid.0 * opts.grid.1).max(1) as u64;
        (p + 2) * profile.dense_bytes / p.max(1) + profile.dense_bytes
    }
    fn estimate(&self, profile: &GraphProfile, opts: &SolveOpts) -> Estimate {
        let p = (opts.grid.0 * opts.grid.1).max(1) as f64;
        let rounds = profile.n.div_ceil(opts.block.max(1)) as f64;
        let seconds = dense_flops(profile.n) * T_FLOP_PACKED / opts.effective_threads() as f64
            + p * T_SIM_RANK
            + rounds * p * 1e-4;
        Estimate { seconds, detail: "2n³·t_packed/threads + simulated-runtime overhead".into() }
    }
    fn solve(&self, g: &Graph, opts: &SolveOpts) -> Result<Solution, SolveError> {
        let (pr, pc) = opts.grid;
        let mut cfg = opts.dist;
        cfg.block = opts.block.max(1);
        let (d, traffic) =
            distributed_apsp_opts::<MinPlusF32>(pr, pc, &cfg, &g.to_dense(), None, &opts.dist_run)
                .map_err(SolveError::Dist)?;
        let mut sol = solution(d, self.name(), opts.effective_threads());
        sol.stats.notes.push(format!(
            "dist: {} on a {pr}x{pc} simulated grid, b = {}",
            cfg.legend(),
            cfg.block
        ));
        sol.stats.metrics.extend([
            ("nic_bytes", traffic.total_nic_bytes() as f64),
            ("total_msgs", traffic.total_msgs as f64),
        ]);
        Ok(sol)
    }
}

#[cfg(test)]
mod tests {
    use super::super::{GraphProfile, Registry, SolveError, SolveOpts};
    use super::*;
    use apsp_graph::generators::{self, WeightKind};
    use apsp_graph::GraphBuilder;

    /// Connected, undirected, unit-weight graph: every solver is eligible.
    fn unit_fixture(n: usize, extra: usize, seed: u64) -> Graph {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state
        };
        let mut b = GraphBuilder::new(n);
        for v in 1..n {
            b.add_undirected((next() % v as u64) as usize, v, 1.0);
        }
        for _ in 0..extra {
            let (u, v) = ((next() % n as u64) as usize, (next() % n as u64) as usize);
            if u != v {
                b.add_undirected(u, v, 1.0);
            }
        }
        b.build()
    }

    fn reference(g: &Graph) -> Matrix<f32> {
        let mut d = g.to_dense();
        fw_seq::<MinPlusF32>(&mut d);
        d
    }

    #[test]
    fn every_registered_solver_agrees_on_a_universally_eligible_graph() {
        let reg = Registry::with_all();
        let g = unit_fixture(24, 14, 9);
        let want = reference(&g);
        // tolerance opt-in so the quantized solver is eligible too (unit
        // weights make it bit-exact, so eq_exact still applies)
        let opts = SolveOpts { block: 4, error_tolerance: Some(0.0), ..Default::default() };
        for name in reg.names() {
            let sol = reg.solve(name, &g, &opts).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(sol.dist.eq_exact(&want), "{name} disagrees with fw_seq");
            assert_eq!(sol.solver, name);
            assert!(sol.stats.wall_s > 0.0, "{name}: wall clock not stamped");
        }
    }

    #[test]
    fn aliases_resolve_to_the_same_solver() {
        let reg = Registry::with_all();
        for (alias, canonical) in
            [("dense", "blocked"), ("packed", "blocked"), ("seq", "fw"), ("block-sparse", "sparse"), ("delta-stepping", "delta"), ("out-of-core", "ooc"), ("staged", "ooc"), ("q16", "quant"), ("q32", "quant")]
        {
            assert_eq!(reg.get(alias).unwrap().name(), canonical, "{alias}");
        }
    }

    #[test]
    fn unknown_solver_lists_known_names() {
        let reg = Registry::with_all();
        match reg.get("magic") {
            Err(SolveError::UnknownSolver { name, known }) => {
                assert_eq!(name, "magic");
                assert!(known.contains(&"blocked") && known.contains(&"seidel"));
            }
            other => panic!("expected UnknownSolver, got {:?}", other.map(|s| s.name())),
        }
    }

    #[test]
    fn dijkstra_and_delta_reject_negative_weights_with_typed_reason() {
        let reg = Registry::with_all();
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 2.0).add_edge(1, 2, -1.5).add_edge(2, 3, 2.0);
        let g = b.build();
        let opts = SolveOpts::default();
        for name in ["dijkstra", "delta"] {
            match reg.solve(name, &g, &opts) {
                Err(SolveError::Ineligible { solver, reason }) => {
                    assert_eq!(solver, name);
                    assert_eq!(reason, Ineligible::NegativeWeights { count: 1, min: -1.5 });
                }
                other => panic!("{name}: expected Ineligible, got {other:?}"),
            }
        }
        // johnson handles the same graph (no negative cycle)
        let want = reference(&g);
        assert!(reg.solve("johnson", &g, &opts).unwrap().dist.eq_exact(&want));
    }

    #[test]
    fn seidel_rejects_nonunit_directed_and_disconnected_graphs() {
        let reg = Registry::with_all();
        let opts = SolveOpts::default();
        let cases: [(Graph, Ineligible); 3] = [
            (
                generators::grid(4, 4, WeightKind::small_ints(), 1),
                Ineligible::NonUnitWeights,
            ),
            (generators::unit_ring(6), Ineligible::Directed),
            (
                {
                    let mut b = GraphBuilder::new(4);
                    b.add_undirected(0, 1, 1.0);
                    b.add_undirected(2, 3, 1.0);
                    b.build()
                },
                Ineligible::Disconnected { components: 2 },
            ),
        ];
        for (g, want) in cases {
            match reg.solve("seidel", &g, &opts) {
                Err(SolveError::Ineligible { solver: "seidel", reason }) => {
                    assert_eq!(reason, want)
                }
                other => panic!("expected {want:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn johnson_surfaces_negative_cycles_as_typed_error() {
        let reg = Registry::with_all();
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0).add_edge(1, 2, -3.0).add_edge(2, 1, 1.0);
        match reg.solve("johnson", &b.build(), &SolveOpts::default()) {
            Err(SolveError::NegativeCycle) => {}
            other => panic!("expected NegativeCycle, got {other:?}"),
        }
    }

    #[test]
    fn memory_budget_zero_makes_everything_ineligible() {
        let reg = Registry::with_all();
        let g = unit_fixture(12, 4, 3);
        // tolerance opt-in so even quant reaches the uniform budget screen
        let opts = SolveOpts {
            memory_budget: Some(0),
            error_tolerance: Some(1.0),
            ..Default::default()
        };
        let plan = reg.plan(&g, &opts);
        assert!(plan.chosen.is_none());
        assert!(plan
            .entries
            .iter()
            .all(|e| matches!(e.outcome, Err(Ineligible::MemoryBudget { .. }))));
        match reg.solve_auto(&g, &opts) {
            Err(SolveError::NoEligibleSolver) => {}
            other => panic!("expected NoEligibleSolver, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn memory_budget_below_dense_flips_the_planner_to_out_of_core() {
        let reg = Registry::with_all();
        // complete-ish dense graph: the sparse/SSSP families are all priced
        // out by density, and dense_bytes = 96²·4 = 36 864
        let g = generators::uniform_dense(96, WeightKind::small_ints(), 21);
        let want = reference(&g);
        let budget = 30 * 1024; // below dense_bytes, above the tile-24 floor
        let opts = SolveOpts { memory_budget: Some(budget as u64), ..Default::default() };
        let plan = reg.plan(&g, &opts);
        assert_eq!(plan.chosen, Some("ooc"), "\n{}", plan.render());
        // every in-RAM dense solver must be priced out by the budget
        for e in &plan.entries {
            if ["blocked", "dc", "fw"].contains(&e.solver) {
                assert!(
                    matches!(e.outcome, Err(Ineligible::MemoryBudget { .. })),
                    "{} should be budget-ineligible",
                    e.solver
                );
            }
        }
        // and the staged solve itself is exact, under budget, through a file
        let sol = reg.solve("ooc", &g, &opts).unwrap();
        assert!(sol.dist.eq_exact(&want));
        assert!(sol.stats.notes.iter().any(|n| n.contains("file store")), "{:?}", sol.stats.notes);
        let metric = |k: &str| {
            sol.stats.metrics.iter().find(|(n, _)| *n == k).map(|(_, v)| *v).unwrap()
        };
        assert_eq!(metric("ooc_staged"), 1.0);
        assert!(metric("peak_resident_bytes") <= budget as f64);
        assert!(metric("tiles_written") > 0.0, "a sub-dense budget must spill tiles");
    }

    #[test]
    fn out_of_core_without_budget_runs_in_memory_and_is_never_preferred() {
        let reg = Registry::with_all();
        let g = unit_fixture(32, 20, 17);
        let want = reference(&g);
        let opts = SolveOpts { block: 8, ..Default::default() };
        let sol = reg.solve("ooc", &g, &opts).unwrap();
        assert!(sol.dist.eq_exact(&want));
        assert!(sol.stats.notes.iter().any(|n| n.contains("memory store")));
        // with no budget pressure the planner must not pick ooc over the
        // plain packed dense engine
        let plan = reg.plan(&g, &opts);
        assert_ne!(plan.chosen, Some("ooc"));
    }

    #[test]
    fn impossible_budget_is_a_typed_ooc_error() {
        let reg = Registry::with_all();
        let g = unit_fixture(48, 10, 23);
        // above zero (so the registry reaches the solver when forced) but
        // below the smallest staged floor
        let opts = SolveOpts { memory_budget: Some(4096), ..Default::default() };
        match reg.solve("ooc", &g, &opts) {
            Err(SolveError::Ineligible { solver: "ooc", reason: Ineligible::MemoryBudget { .. } }) => {}
            Err(SolveError::Ooc(e)) => {
                assert!(matches!(e, crate::ooc::OocError::BudgetTooSmall { .. }), "{e:?}")
            }
            other => panic!("expected a budget error, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn planner_flips_between_sparse_and_dense_families() {
        let reg = Registry::with_all();
        let opts = SolveOpts::default();
        // The packed dense engine sustains ~45 Gflop/s, so the measured
        // crossover sits near n ≈ 4k: below it dense FW wins even on grids.
        let small_grid = generators::grid(16, 16, WeightKind::small_ints(), 2);
        let small_pick = reg.plan(&small_grid, &opts).chosen.expect("small grid plan");
        assert!(["blocked", "dc"].contains(&small_pick), "small grid chose {small_pick}");
        // road-like 64×64 grid (n = 4096): an SSSP sweep beats cubic work
        let grid = generators::grid(64, 64, WeightKind::small_ints(), 2);
        let sparse_pick = reg.plan(&grid, &opts).chosen.expect("grid plan");
        assert!(
            ["dijkstra", "delta", "johnson", "sparse"].contains(&sparse_pick),
            "grid chose {sparse_pick}"
        );
        // uniform dense at the same n = 4096 (profile synthesized — building
        // the 16.7M-edge graph in a debug test is pointless): packed FW wins
        let n = 4096_usize;
        let dense_profile = GraphProfile {
            n,
            m: n * (n - 1),
            density: 1.0,
            min_weight: 1.0,
            max_weight: 9.0,
            mean_weight: 5.0,
            negative_edges: 0,
            unit_weights: false,
            integral_weights: true,
            symmetric: false,
            weak_components: 1,
            block_size: opts.block,
            nnz_blocks: n.div_ceil(opts.block).pow(2),
            block_density: 1.0,
            dense_bytes: (n * n * 4) as u64,
        };
        let dense_pick =
            reg.plan_for_profile(dense_profile, &opts).chosen.expect("dense plan");
        assert!(["blocked", "dc"].contains(&dense_pick), "dense chose {dense_pick}");
        assert_ne!(sparse_pick, dense_pick, "planner must flip between families");
        // ring with chords at n = 4096: sparsest family, Δ-stepping's
        // heap-free sweep is the clear pick (measured 2.8× over blocked)
        let ring = generators::ring_with_chords(4096, WeightKind::small_ints(), 3);
        let ring_pick = reg.plan(&ring, &opts).chosen.expect("ring plan");
        assert_eq!(ring_pick, "delta", "ring chose {ring_pick}");
    }

    #[test]
    fn quant_is_opt_in_and_exact_on_integral_weights() {
        let reg = Registry::with_all();
        let g = generators::uniform_dense(32, WeightKind::small_ints(), 13);
        // without --error-tolerance: typed NeedsTolerance, never auto-chosen
        match reg.solve("quant", &g, &SolveOpts::default()) {
            Err(SolveError::Ineligible {
                solver: "quant",
                reason: Ineligible::NeedsTolerance { eps },
            }) => assert_eq!(eps, 0.0, "integral weights are exactly quantizable"),
            other => panic!("expected NeedsTolerance, got {:?}", other.map(|s| s.solver)),
        }
        assert_ne!(reg.plan(&g, &SolveOpts::default()).chosen, Some("quant"));
        // with the opt-in: eligible, bit-exact, and cheap enough that the
        // planner learns the new tradeoff and auto-selects it
        let opts = SolveOpts { error_tolerance: Some(1e-3), ..Default::default() };
        let sol = reg.solve("quant", &g, &opts).unwrap();
        assert!(sol.dist.eq_exact(&reference(&g)));
        assert!(sol.stats.notes.iter().any(|n| n.contains("u16")), "{:?}", sol.stats.notes);
        let metric = |k: &str| {
            sol.stats.metrics.iter().find(|(n, _)| *n == k).map(|(_, v)| *v).unwrap()
        };
        assert_eq!(metric("quant_exact"), 1.0);
        assert_eq!(metric("quant_eps"), 0.0);
        let plan = reg.plan(&g, &opts);
        assert_eq!(plan.chosen, Some("quant"), "\n{}", plan.render());
    }

    #[test]
    fn quant_overflow_and_tolerance_misses_are_typed() {
        let reg = Registry::with_all();
        // one 3e9 edge: even i32 at scale 1 cannot hold hops x max_weight
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 3.0e9).add_edge(1, 2, 1.0);
        let opts = SolveOpts { error_tolerance: Some(1.0), ..Default::default() };
        match reg.solve("quant", &b.build(), &opts) {
            Err(SolveError::Ineligible {
                solver: "quant",
                reason: Ineligible::Quant(quant::QuantError::Overflow { .. }),
            }) => {}
            other => panic!("expected Overflow, got {:?}", other.map(|s| s.solver)),
        }
        // fractional weights + an impossible tolerance: typed Tolerance miss
        let g = generators::uniform_dense(16, WeightKind::Real { lo: 0.0, hi: 1.0 }, 3);
        let tight = SolveOpts { error_tolerance: Some(0.0), ..Default::default() };
        match reg.solve("quant", &g, &tight) {
            Err(SolveError::Ineligible {
                solver: "quant",
                reason: Ineligible::Quant(quant::QuantError::Tolerance { .. }),
            }) => {}
            other => panic!("expected Tolerance, got {:?}", other.map(|s| s.solver)),
        }
        // …but a realistic tolerance admits a bounded-error solve
        let loose = SolveOpts { error_tolerance: Some(1e-3), ..Default::default() };
        let sol = reg.solve("quant", &g, &loose).unwrap();
        let want = reference(&g);
        let eps = sol
            .stats
            .metrics
            .iter()
            .find(|(n, _)| *n == "quant_eps")
            .map(|(_, v)| *v)
            .unwrap();
        assert!(eps > 0.0 && eps <= 1e-3);
        for i in 0..g.n() {
            for j in 0..g.n() {
                let (a, b) = (sol.dist[(i, j)], want[(i, j)]);
                assert!((a - b).abs() as f64 <= eps + 1e-6, "({i},{j}): |{a} - {b}|");
            }
        }
    }

    #[test]
    fn plan_render_explains_eligibility_and_choice() {
        let reg = Registry::with_all();
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 2.0).add_edge(1, 2, -1.5).add_edge(2, 3, 2.0).add_edge(3, 0, 5.0);
        let plan = reg.plan(&b.build(), &SolveOpts::default());
        let text = plan.render();
        assert!(text.contains("graph profile"), "{text}");
        assert!(text.contains("dijkstra  ineligible: negative weights"), "{text}");
        assert!(text.contains("never auto-selected"), "{text}"); // dist row
        assert!(text.contains("chosen: "), "{text}");
        // negative weights: only the FW family and johnson remain eligible
        assert!(["blocked", "dc", "fw", "sparse", "johnson"].contains(&plan.chosen.unwrap()));
    }

    #[test]
    fn solve_auto_returns_plan_and_matching_solution() {
        let reg = Registry::with_all();
        let g = generators::grid(6, 6, WeightKind::small_ints(), 11);
        let (plan, sol) = reg.solve_auto(&g, &SolveOpts { block: 8, ..Default::default() }).unwrap();
        assert_eq!(Some(sol.solver), plan.chosen);
        assert!(sol.dist.eq_exact(&reference(&g)));
        // registry.solve("auto", ...) is the same path
        let sol2 = reg.solve("auto", &g, &SolveOpts { block: 8, ..Default::default() }).unwrap();
        assert_eq!(sol2.solver, sol.solver);
    }

    #[test]
    fn thread_cap_is_respected_by_dense_solvers() {
        // correctness under an explicit cap: same matrix, any thread count
        let g = generators::uniform_dense(48, WeightKind::small_ints(), 5);
        let want = reference(&g);
        let reg = Registry::with_all();
        for threads in [1, 2, 3] {
            for name in ["blocked", "dc", "johnson", "dijkstra", "delta"] {
                let opts = SolveOpts { block: 8, threads, ..Default::default() };
                let sol = reg.solve(name, &g, &opts).unwrap();
                assert!(sol.dist.eq_exact(&want), "{name} threads={threads}");
                assert_eq!(sol.stats.threads, threads);
            }
        }
    }
}
