//! `apsp solve` — compute all-pairs shortest distances.
//!
//! Dispatch goes through the [`apsp_core::Registry`]: every algorithm is a
//! [`apsp_core::Solver`] adapter, `--algo auto` lets the planner pick, and
//! eligibility failures surface as typed, explained errors. The one special
//! case kept outside the registry is `--trace`, which needs the traced
//! distributed API to emit per-rank Chrome traces.

use std::io::Write;
use std::time::Instant;

use apsp_core::model::fw_flops;
use apsp_core::{Registry, SolveOpts};
use srgemm::{Matrix, MinPlusF32};

use crate::args::Args;

/// Entry point.
pub fn run(tokens: &[String]) -> Result<(), String> {
    if tokens.iter().any(|t| t == "--help") {
        println!(
            "apsp solve --input <FILE> [--algo {}|auto]
  --algo auto        profile the graph and let the planner pick (see 'apsp plan')
  --block <N>        block size for blocked/sparse/dist (default 64)
  --threads <N>      cap worker threads (0 = all cores)
  --serial           shorthand for --threads 1
  --memory-budget <BYTES[k|m|g]>  working-set ceiling for planner eligibility
  --error-tolerance <EPS>  opt in to low-precision solves (--algo quant / q16 /
                     q32): accept distances within ±EPS of exact (0 = only
                     provably exact quantizations)
  --out <FILE>       write the distance matrix as TSV (careful: n² values)
  --format <dimacs|edges>
  --trace <FILE>     write a per-rank Chrome trace_events JSON and print the
                     per-phase summary (implies --algo dist; --input becomes
                     optional — a built-in demo graph is traced without one)
  --pr <N> --pc <N>  process grid for --algo dist (default 2x2)
  --variant <baseline|pipelined|async|offload|come>  dist preset (default pipelined)
  --schedule <bulksync|lookahead>   override the iteration-schedule axis
  --bcast <tree|ring|ring:CHUNKS>   override the PanelBcast axis
  --exec <incore|offload>           override the OuterUpdate execution axis
  --recv-timeout <SECS>  deadlock-detection timeout for --algo dist receives
  --fault <SPEC>         inject a deterministic fault into the --algo dist run:
                         kill:<rank>@<send> | drop:<rank>@<n> |
                         delay:<rank>@<n>:<ms> | random:<seed>",
            Registry::with_all().names().join("|")
        );
        return Ok(());
    }
    let args = Args::parse(tokens)?;
    let trace_path = args.opt_str("trace");
    let algo: String = args.opt(
        "algo",
        if trace_path.is_some() { "dist".to_string() } else { "blocked".to_string() },
    )?;
    if trace_path.is_some() && algo != "dist" {
        return Err(format!("--trace records per-rank phases, which only --algo dist produces (got '{algo}')"));
    }
    if algo != "dist" && (args.opt_str("fault").is_some() || args.opt_str("recv-timeout").is_some()) {
        return Err(format!("--fault/--recv-timeout act on the simulated runtime, which only --algo dist uses (got '{algo}')"));
    }
    let mut opts: SolveOpts = super::build_solve_opts(&args)?;
    if let Some(spec) = args.opt_str("fault") {
        opts.dist_run.faults = super::parse_fault_plan(spec, opts.grid.0 * opts.grid.1)?;
        println!("fault injection: {spec}");
    }

    let g = match args.opt_str("input") {
        Some(input) => {
            let g = super::load_graph(input, args.opt_str("format"))?;
            println!("loaded {} vertices, {} edges from {input}", g.n(), g.m());
            g
        }
        None if trace_path.is_some() => {
            println!("no --input given; tracing a built-in 64-vertex random graph");
            apsp_graph::generators::erdos_renyi(
                64,
                0.3,
                apsp_graph::generators::WeightKind::small_ints(),
                7,
            )
        }
        None => return Err("missing required option --input".into()),
    };
    let n = g.n();
    if n == 0 {
        return Err("graph is empty".into());
    }

    let t0 = Instant::now();
    let dist: Matrix<f32> = if let Some(trace_out) = trace_path {
        // traced distributed run: the registry's dist adapter covers the
        // untraced case; tracing needs the *_traced API and its artifacts
        let (pr, pc) = opts.grid;
        let cfg = { let mut c = opts.dist; c.block = opts.block; c };
        println!("dist: {} on a {pr}x{pc} simulated grid, b = {}", cfg.legend(), cfg.block);
        let (d, traffic, trace) = apsp_core::distributed_apsp_traced_opts::<MinPlusF32>(
            pr, pc, &cfg, &g.to_dense(), None, &opts.dist_run,
        )
        .map_err(|e| format!("dist: {e}"))?;
        print!("{}", trace.phase_summary(&traffic));
        std::fs::write(trace_out, trace.to_chrome_json())
            .map_err(|e| format!("write {trace_out}: {e}"))?;
        println!("wrote per-rank trace to {trace_out} (open in chrome://tracing or Perfetto)");
        d
    } else {
        let reg = Registry::with_all();
        let sol = if algo == "auto" {
            let (plan, sol) = reg.solve_auto(&g, &opts).map_err(|e| e.to_string())?;
            let chosen = plan.chosen.unwrap_or("?");
            match plan.entry(chosen).and_then(|e| e.outcome.as_ref().ok()) {
                Some(est) => println!(
                    "auto: picked '{chosen}' (est {}); run 'apsp plan' for the full table",
                    apsp_core::solver::planner::human_seconds(est.seconds)
                ),
                None => println!("auto: picked '{chosen}'"),
            }
            sol
        } else {
            reg.solve(&algo, &g, &opts).map_err(|e| e.to_string())?
        };
        for note in &sol.stats.notes {
            println!("{note}");
        }
        sol.dist
    };
    let secs = t0.elapsed().as_secs_f64();
    println!("solved in {:.3} s ({:.2} Gflop/s FW-equivalent)", secs, fw_flops(n) / secs / 1e9);

    // summary statistics
    let mut finite = 0u64;
    let mut total = 0f64;
    let mut max = 0f32;
    for i in 0..n {
        for j in 0..n {
            let d = dist[(i, j)];
            if i != j && d.is_finite() {
                finite += 1;
                total += d as f64;
                max = max.max(d);
            }
        }
    }
    let pairs = (n * n - n) as u64;
    println!(
        "reachable pairs: {finite}/{pairs}; mean distance {:.3}; diameter {max}",
        total / finite.max(1) as f64
    );

    if let Some(out) = args.opt_str("out") {
        let mut f = std::io::BufWriter::new(
            std::fs::File::create(out).map_err(|e| format!("create {out}: {e}"))?,
        );
        for i in 0..n {
            let row: Vec<String> = (0..n).map(|j| format!("{}", dist[(i, j)])).collect();
            writeln!(f, "{}", row.join("\t")).map_err(|e| e.to_string())?;
        }
        println!("wrote {n}×{n} distance matrix to {out}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn fixture() -> (std::path::PathBuf, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("apsp-solve-{}-{:?}", std::process::id(), std::thread::current().id()));
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("g.gr");
        let g = apsp_graph::generators::erdos_renyi(
            15,
            0.3,
            apsp_graph::generators::WeightKind::small_ints(),
            4,
        );
        crate::commands::save_graph(&g, input.to_str().unwrap(), None).unwrap();
        (dir, input)
    }

    #[test]
    fn every_algorithm_solves_and_agrees() {
        let (dir, input) = fixture();
        // solve with each eligible algorithm (and auto), dump TSVs, compare;
        // the fixture has non-negative integer weights, so everything except
        // seidel (non-unit weights) applies
        let mut outputs = Vec::new();
        for algo in ["fw", "blocked", "dc", "sparse", "johnson", "dijkstra", "delta", "dist", "auto"]
        {
            let out = dir.join(format!("{algo}.tsv"));
            let cmd = format!(
                "--input {} --algo {algo} --block 4 --out {}",
                input.display(),
                out.display()
            );
            run(&toks(&cmd)).unwrap_or_else(|e| panic!("{algo}: {e}"));
            outputs.push(std::fs::read_to_string(&out).unwrap());
        }
        for o in &outputs[1..] {
            assert_eq!(o, &outputs[0]);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn aliases_and_typed_ineligibility_surface_through_the_cli() {
        let (dir, input) = fixture();
        // alias: --algo dense resolves to the blocked solver
        let out = dir.join("dense.tsv");
        run(&toks(&format!("--input {} --algo dense --block 4 --out {}", input.display(), out.display())))
            .unwrap();
        // seidel refuses the non-unit-weight fixture with an explained error
        let err = run(&toks(&format!("--input {} --algo seidel", input.display()))).unwrap_err();
        assert!(err.contains("seidel: ineligible"), "{err}");
        assert!(err.contains("not all 1"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn threads_cap_and_serial_flag_agree_with_default() {
        let (dir, input) = fixture();
        let mut outputs = Vec::new();
        for extra in ["", "--serial", "--threads 2"] {
            let out = dir.join(format!("t{}.tsv", outputs.len()));
            let cmd = format!(
                "--input {} --algo blocked --block 4 {extra} --out {}",
                input.display(),
                out.display()
            );
            run(&toks(&cmd)).unwrap();
            outputs.push(std::fs::read_to_string(&out).unwrap());
        }
        for o in &outputs[1..] {
            assert_eq!(o, &outputs[0]);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quantized_solve_is_opt_in_and_matches_fw_on_integer_weights() {
        let (dir, input) = fixture();
        // without --error-tolerance the quantized solver refuses, typed
        let err = run(&toks(&format!("--input {} --algo quant", input.display()))).unwrap_err();
        assert!(err.contains("quant: ineligible"), "{err}");
        assert!(err.contains("--error-tolerance"), "{err}");
        // with the opt-in: exact on the small-integer fixture, through both
        // the canonical name and the q16/q32 aliases
        let want = dir.join("fw.tsv");
        run(&toks(&format!("--input {} --algo fw --out {}", input.display(), want.display())))
            .unwrap();
        let want = std::fs::read_to_string(&want).unwrap();
        for algo in ["quant", "q16", "q32"] {
            let out = dir.join(format!("{algo}.tsv"));
            let cmd = format!(
                "--input {} --algo {algo} --block 4 --error-tolerance 0 --out {}",
                input.display(),
                out.display()
            );
            run(&toks(&cmd)).unwrap_or_else(|e| panic!("{algo}: {e}"));
            assert_eq!(std::fs::read_to_string(&out).unwrap(), want, "{algo}");
        }
        // junk tolerances are rejected before any solving happens
        for bad in ["--error-tolerance pi", "--error-tolerance -0.5"] {
            let cmd = format!("--input {} --algo quant {bad}", input.display());
            assert!(run(&toks(&cmd)).is_err(), "{bad} should be rejected");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quant_overflow_surfaces_as_a_typed_cli_error() {
        let dir = std::env::temp_dir().join(format!(
            "apsp-solve-overflow-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("huge.gr");
        // a 3e9 edge weight cannot fit below the i32 sentinel at any scale
        let mut b = apsp_graph::GraphBuilder::new(3);
        b.add_edge(0, 1, 3.0e9).add_edge(1, 2, 1.0);
        crate::commands::save_graph(&b.build(), input.to_str().unwrap(), None).unwrap();
        let cmd = format!("--input {} --algo quant --error-tolerance 1", input.display());
        let err = run(&toks(&cmd)).unwrap_err();
        assert!(err.contains("quant: ineligible"), "{err}");
        assert!(err.contains("overflow"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn memory_budget_starves_auto_into_a_typed_error() {
        let (dir, input) = fixture();
        let cmd = format!("--input {} --algo auto --memory-budget 1", input.display());
        let err = run(&toks(&cmd)).unwrap_err();
        assert!(err.contains("no eligible solver"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dist_axis_overrides_and_come_preset_agree_with_fw() {
        let (dir, input) = fixture();
        let want = dir.join("fw.tsv");
        run(&toks(&format!("--input {} --algo fw --out {}", input.display(), want.display())))
            .unwrap();
        let want = std::fs::read_to_string(&want).unwrap();
        for (i, extra) in [
            "--variant come",
            "--variant baseline --bcast ring:2",
            "--variant pipelined --exec offload --schedule bulksync",
        ]
        .iter()
        .enumerate()
        {
            let out = dir.join(format!("axes{i}.tsv"));
            let cmd = format!(
                "--input {} --algo dist --block 4 {extra} --out {}",
                input.display(),
                out.display()
            );
            run(&toks(&cmd)).unwrap();
            assert_eq!(std::fs::read_to_string(&out).unwrap(), want, "{extra}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_axis_values_are_reported() {
        let (dir, input) = fixture();
        for extra in ["--schedule eager", "--bcast ring:0", "--exec tpu"] {
            let cmd = format!("--input {} --algo dist {extra}", input.display());
            assert!(run(&toks(&cmd)).is_err(), "{extra} should be rejected");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_flag_implies_dist_and_writes_chrome_json() {
        let (dir, input) = fixture();
        let out = dir.join("trace.json");
        let cmd = format!("--input {} --block 4 --trace {}", input.display(), out.display());
        run(&toks(&cmd)).unwrap();
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.starts_with("{\"traceEvents\":["));
        for phase in ["DiagUpdate", "DiagBcast", "PanelUpdate", "PanelBcast", "OuterUpdate"] {
            assert!(json.contains(&format!("\"name\":\"{phase}\"")), "missing {phase}");
        }
        // all four ranks of the default 2x2 grid have a timeline
        for tid in 0..4 {
            assert!(json.contains(&format!("\"tid\":{tid}")), "missing rank {tid}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_without_input_uses_the_demo_graph() {
        let dir = std::env::temp_dir().join(format!(
            "apsp-solve-demo-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("trace.json");
        run(&toks(&format!("--trace {}", out.display()))).unwrap();
        assert!(std::fs::read_to_string(&out).unwrap().contains("OuterUpdate"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_rejects_non_dist_algos() {
        let (dir, input) = fixture();
        let cmd = format!("--input {} --algo fw --trace x.json", input.display());
        assert!(run(&toks(&cmd)).unwrap_err().contains("--algo dist"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fault_injected_dist_run_fails_with_a_typed_error_not_a_panic() {
        let (dir, input) = fixture();
        // rank 0 killed before its first send: the whole run must come back
        // as a typed Err (→ non-zero process exit), not a panic/abort
        let cmd = format!("--input {} --algo dist --block 4 --fault kill:0@0", input.display());
        let err = run(&toks(&cmd)).unwrap_err();
        assert!(
            err.contains("fault injection killed rank 0") || err.contains("peer failure"),
            "{err}"
        );
        // a dropped message surfaces as the structured deadlock report once
        // the (shortened) recv timeout expires
        let cmd = format!(
            "--input {} --algo dist --block 4 --fault drop:0@1 --recv-timeout 1",
            input.display()
        );
        let err = run(&toks(&cmd)).unwrap_err();
        assert!(err.contains("timed out") || err.contains("peer failure"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fault_free_run_with_recv_timeout_matches_fw() {
        let (dir, input) = fixture();
        let want = dir.join("fw.tsv");
        run(&toks(&format!("--input {} --algo fw --out {}", input.display(), want.display())))
            .unwrap();
        let out = dir.join("dist-timeout.tsv");
        let cmd = format!(
            "--input {} --algo dist --block 4 --recv-timeout 10 --out {}",
            input.display(),
            out.display()
        );
        run(&toks(&cmd)).unwrap();
        assert_eq!(
            std::fs::read_to_string(&out).unwrap(),
            std::fs::read_to_string(&want).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fault_flags_reject_non_dist_algos_and_bad_specs() {
        let (dir, input) = fixture();
        let cmd = format!("--input {} --algo fw --fault kill:0@0", input.display());
        assert!(run(&toks(&cmd)).unwrap_err().contains("--algo dist"));
        for bad in ["explode:1", "kill:9@0", "delay:0@1", "random:x"] {
            let cmd = format!("--input {} --algo dist --fault {bad}", input.display());
            assert!(run(&toks(&cmd)).is_err(), "{bad} should be rejected");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_algo_is_an_error() {
        let (dir, input) = fixture();
        let cmd = format!("--input {} --algo magic", input.display());
        let err = run(&toks(&cmd)).unwrap_err();
        assert!(err.contains("unknown algorithm 'magic'"), "{err}");
        assert!(err.contains("blocked"), "should list known names: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
